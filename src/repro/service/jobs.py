"""Thread-pool synthesis job manager: priorities, deadlines, dedup, cancel.

The serving brain of :mod:`repro.service`.  A :class:`JobManager` owns a
pool of worker threads draining a priority queue of synthesis jobs; each
job is a :class:`SynthesizeRequest` or :class:`SweepRequest` plus
bookkeeping.  What the manager adds over a bare thread pool:

* **Content-addressed caching** — every request is fingerprinted
  (:mod:`repro.service.fingerprint`); a :class:`~repro.service.cache.ResultCache`
  hit completes the job without ever instantiating a solver.
* **Single-flight dedup** — while a job for fingerprint ``F`` is queued
  or running, submitting an identical request returns *that job* instead
  of enqueueing a second solve, mirroring the shared-incumbent idea of
  the parallel sweep: concurrent identical work is done once and the
  result shared.
* **Cooperative cancellation** — ``cancel(job_id)`` sets a
  ``threading.Event`` that the solvers poll once per branch-and-bound
  node through :attr:`SolverOptions.should_stop
  <repro.solvers.base.SolverOptions.should_stop>`; a running solve
  unwinds with :class:`~repro.errors.CancelledError` within one node.
  Parallel solves bridge the hook across the process boundary: the
  driver polls it while subtree leases are in flight and sets the
  persistent pool's shared ``multiprocessing.Event``, which every pool
  worker polls as *its* ``should_stop`` — so DELETE on a parallel job
  stops the in-flight subtree solves too, not just the driver thread.
* **Per-job deadlines** — a wall-clock budget counted from submission,
  mapped onto ``SolverOptions.time_limit`` for each underlying solve and
  enforced between solves through the same ``should_stop`` hook (a sweep
  is many solves; the time limit alone would only bound each one).
* **Retry with backoff** — transient backend failures (a crashed worker
  pool, an OS-level hiccup) are retried with exponential backoff;
  infeasibility, unknown solvers, and cancellations are permanent and
  never retried.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from repro.core.options import FormulationOptions, Objective
from repro.errors import (
    CancelledError,
    InfeasibleError,
    ReproError,
    SolverError,
    UnknownSolverError,
)
from repro.obs.sinks import Tracer, make_tracer
from repro.service.cache import ResultCache
from repro.service.fingerprint import fingerprint_request
from repro.solvers.base import SolverOptions
from repro.synthesis.synthesizer import Synthesizer
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Exceptions worth retrying: backend trouble that a fresh attempt can
#: plausibly clear.  Infeasibility and bad solver names are excluded
#: below — they are properties of the request, not of the attempt.
_TRANSIENT = (SolverError, OSError)
_PERMANENT = (InfeasibleError, UnknownSolverError)


@dataclass
class SynthesizeRequest:
    """One ``synthesize`` call as data (what the HTTP API posts).

    Attributes mirror :meth:`repro.synthesis.synthesizer.Synthesizer.synthesize`
    and its constructor configuration.
    """

    graph: TaskGraph
    library: TechnologyLibrary
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT
    solver: str = "auto"
    solver_options: Optional[SolverOptions] = None
    formulation: Optional[FormulationOptions] = None
    constraints: Any = None
    cost_cap: Optional[float] = None
    deadline: Optional[float] = None
    objective: Objective = Objective.MIN_MAKESPAN
    minimize_secondary: bool = True
    validate: bool = True

    kind = "synthesize"

    def fingerprint(self) -> str:
        """Content address of this request (see :mod:`.fingerprint`)."""
        return fingerprint_request(
            self.kind, self.graph, self.library,
            solver=self.solver, solver_options=self.solver_options,
            formulation=self._formulation(), constraints=self.constraints,
            cost_cap=self.cost_cap, deadline=self.deadline,
            objective=self.objective, minimize_secondary=self.minimize_secondary,
        )

    def _formulation(self) -> FormulationOptions:
        base = self.formulation or FormulationOptions()
        return dataclasses.replace(base, style=self.style)

    def _synthesizer(self, solver_options: Optional[SolverOptions]) -> Synthesizer:
        return Synthesizer(
            self.graph, self.library, style=self.style, solver=self.solver,
            solver_options=solver_options, options=self.formulation,
            constraints=self.constraints,
        )

    def run(self, solver_options: Optional[SolverOptions]):
        """Execute the solve; returns the result object.

        ``solver_options`` is this request's options with the job layer's
        cancellation hook and deadline-derived time limit merged in.
        """
        return self._synthesizer(solver_options).synthesize(
            cost_cap=self.cost_cap, deadline=self.deadline,
            objective=self.objective,
            minimize_secondary=self.minimize_secondary,
            validate=self.validate,
        )

    def document_of(self, result) -> Dict[str, Any]:
        """JSON document for ``result`` (the cache/HTTP payload)."""
        from repro.synthesis.io import design_to_document

        return design_to_document(result)

    def store(self, cache: ResultCache, key: str, result) -> None:
        """Cache hook: store a design."""
        cache.put_design(key, result)

    def lookup(self, cache: ResultCache, key: str):
        """Cache hook: load a design (``None`` on miss)."""
        return cache.get_design(key, self.graph, self.library)


@dataclass
class SweepRequest:
    """One ``pareto_sweep`` call as data."""

    graph: TaskGraph
    library: TechnologyLibrary
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT
    solver: str = "auto"
    solver_options: Optional[SolverOptions] = None
    formulation: Optional[FormulationOptions] = None
    constraints: Any = None
    max_designs: int = 64
    cost_step: float = 1e-4
    validate: bool = True
    incremental: bool = True

    kind = "sweep"

    def fingerprint(self) -> str:
        """Content address of this request (see :mod:`.fingerprint`)."""
        return fingerprint_request(
            self.kind, self.graph, self.library,
            solver=self.solver, solver_options=self.solver_options,
            formulation=self._formulation(), constraints=self.constraints,
            max_designs=self.max_designs, cost_step=self.cost_step,
        )

    def _formulation(self) -> FormulationOptions:
        base = self.formulation or FormulationOptions()
        return dataclasses.replace(base, style=self.style)

    def run(self, solver_options: Optional[SolverOptions]):
        """Execute the sweep; returns the :class:`ParetoFront`."""
        synth = Synthesizer(
            self.graph, self.library, style=self.style, solver=self.solver,
            solver_options=solver_options, options=self.formulation,
            constraints=self.constraints, incremental=self.incremental,
        )
        return synth.pareto_sweep(
            max_designs=self.max_designs, cost_step=self.cost_step,
            validate=self.validate,
        )

    def document_of(self, result) -> Dict[str, Any]:
        """JSON document for ``result`` (the cache/HTTP payload)."""
        return result.to_dict()

    def store(self, cache: ResultCache, key: str, result) -> None:
        """Cache hook: store a front."""
        cache.put_front(key, result)

    def lookup(self, cache: ResultCache, key: str):
        """Cache hook: load a front (``None`` on miss)."""
        return cache.get_front(key, self.graph, self.library)


class Job:
    """One submitted request plus its lifecycle state.

    Not constructed directly — :meth:`JobManager.submit` returns these.
    A job deduplicated onto an earlier identical submission IS that
    earlier job (same object, same id): waiters share one solve and one
    result, and cancelling it cancels it for every submitter.
    """

    def __init__(self, job_id: str, request, priority: int,
                 deadline_seconds: Optional[float]) -> None:
        self.id = job_id
        self.request = request
        self.kind = request.kind
        self.fingerprint = request.fingerprint()
        self.priority = priority
        self.deadline_seconds = deadline_seconds
        self.status = QUEUED
        #: True when the result came from the cache (no solver invoked).
        self.cached = False
        #: Solve attempts actually started (0 for a cache hit).
        self.attempts = 0
        #: Identical submissions coalesced onto this job (dedup count).
        self.shared = 0
        self.error: Optional[str] = None
        #: The result object (Design or ParetoFront) once DONE.
        self.result: Any = None
        #: The result's JSON document once DONE (what HTTP serves).
        self.document: Optional[Dict[str, Any]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._submitted_mono = time.monotonic()
        self._cancel = threading.Event()
        self._finished = threading.Event()

    # -- caller-facing ------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (or ``timeout``)."""
        return self._finished.wait(timeout)

    @property
    def finished(self) -> bool:
        """True in any terminal state (done, failed, cancelled)."""
        return self._finished.is_set()

    @property
    def cancel_requested(self) -> bool:
        """True once :meth:`JobManager.cancel` has been called on this job."""
        return self._cancel.is_set()

    def snapshot(self) -> Dict[str, Any]:
        """JSON document of the job's current state (``GET /jobs/<id>``)."""
        return {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "priority": self.priority,
            "cached": self.cached,
            "attempts": self.attempts,
            "shared": self.shared,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.document,
        }

    # -- deadline plumbing --------------------------------------------------
    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock budget left, or ``None`` when no deadline was set."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - (time.monotonic() - self._submitted_mono)

    def past_deadline(self) -> bool:
        """True when the job's wall-clock budget is exhausted."""
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0

    def __repr__(self) -> str:
        return f"Job({self.id!r}, {self.kind}, {self.status})"


class JobManager:
    """Priority thread pool executing synthesis jobs against a cache.

    Args:
        workers: Worker thread count.  Threads are daemonic and started
            eagerly; :meth:`shutdown` (or the context manager) stops them.
        cache: Shared :class:`~repro.service.cache.ResultCache`; ``None``
            disables caching (every submission solves).
        retries: Extra attempts after a transient backend failure.
        retry_backoff: Base backoff in seconds; attempt ``k`` waits
            ``retry_backoff * 2**k`` (interrupted early by cancellation).
        max_finished_jobs: Retention cap on *terminal* jobs.  Once more
            than this many jobs have finished, the oldest-finished ones
            (and their result documents) are dropped from the job table,
            so a long-running service does not grow without bound;
            ``GET /jobs/<id>`` answers 404 for an evicted job.  Results
            themselves stay available through the cache.
        trace: Optional :class:`~repro.obs.sinks.TraceSink` receiving
            ``job_status`` events at every state transition.
    """

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        retries: int = 2,
        retry_backoff: float = 0.1,
        max_finished_jobs: int = 256,
        trace=None,
    ) -> None:
        if workers < 1:
            raise ValueError("JobManager needs at least one worker thread")
        if max_finished_jobs < 0:
            raise ValueError("max_finished_jobs must be nonnegative")
        self.cache = cache
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.max_finished_jobs = max_finished_jobs
        self._tracer: Optional[Tracer] = make_tracer(trace)
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._queue: List = []  # heap of (-priority, seq, job)
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._jobs: Dict[str, Job] = {}
        #: Terminal job ids in finish order, for retention eviction.
        self._finished_order: Deque[str] = deque()
        #: fingerprint -> in-flight (queued or running) job, for dedup.
        self._inflight: Dict[str, Job] = {}
        self._shutdown = False
        #: Solver invocations actually started (cache hits excluded).
        self.solves = 0
        #: Submissions answered by single-flight dedup.
        self.dedup_hits = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- public API ----------------------------------------------------------
    def submit(self, request, priority: int = 0,
               deadline_seconds: Optional[float] = None) -> Job:
        """Queue a request; returns its :class:`Job` immediately.

        Single-flight: when an identical request (same fingerprint) is
        already queued or running, the existing job is returned instead
        of a new one — the callers share one solve.  Finished jobs never
        dedup (their results are already in the cache; a resubmission
        becomes a fresh job that hits the cache instead).

        Args:
            request: A :class:`SynthesizeRequest` or :class:`SweepRequest`.
            priority: Higher runs earlier; ties run in submission order.
            deadline_seconds: Wall-clock budget counted from *this*
                submission.  Ignored when deduplicated onto an in-flight
                job (the original submission's budget stands).
        """
        key = request.fingerprint()
        with self._work_ready:
            if self._shutdown:
                raise RuntimeError("JobManager is shut down")
            existing = self._inflight.get(key)
            if existing is not None and not existing.cancel_requested:
                existing.shared += 1
                self.dedup_hits += 1
                return existing
            job = Job(f"j{next(self._ids):06d}", request, priority, deadline_seconds)
            # Reuse the fingerprint just computed rather than re-hashing.
            job.fingerprint = key
            self._jobs[job.id] = job
            self._inflight[key] = job
            heapq.heappush(self._queue, (-priority, next(self._seq), job))
            self._emit_status(job)
            self._work_ready.notify()
            return job

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``.

        Raises:
            KeyError: Unknown id.
        """
        with self._lock:
            return self._jobs[job_id]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation of a job; returns False in terminal states.

        A queued job is finalized as ``cancelled`` immediately; a running
        job's solver observes the flag through ``should_stop`` within one
        branch-and-bound node and unwinds cooperatively.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.finished:
                return False
            job._cancel.set()
            if job.status == QUEUED:
                self._finalize(job, CANCELLED, error="cancelled before start")
            return True

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: job states, dedup/solve counts, cache counters."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "jobs": by_status,
                "queued": sum(1 for *_, j in self._queue if j.status == QUEUED),
                "solves": self.solves,
                "dedup_hits": self.dedup_hits,
                "workers": len(self._threads),
                "cache": self.cache.stats() if self.cache is not None else None,
            }

    def shutdown(self, wait: bool = True, cancel_pending: bool = True) -> None:
        """Stop the workers.

        Args:
            wait: Join the worker threads before returning.
            cancel_pending: Cancel queued jobs (running solves also get
                their cancel flag set, so they unwind within a node).
        """
        with self._work_ready:
            if self._shutdown:
                return
            self._shutdown = True
            if cancel_pending:
                for job in self._jobs.values():
                    if not job.finished:
                        job._cancel.set()
                        if job.status == QUEUED:
                            self._finalize(job, CANCELLED, error="service shutdown")
            self._work_ready.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)

    def __enter__(self) -> "JobManager":
        """Context-manager support: shuts down on exit."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut down (cancelling pending jobs) on scope exit."""
        self.shutdown()

    # -- worker internals ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._work_ready:
                while not self._queue and not self._shutdown:
                    self._work_ready.wait()
                if not self._queue and self._shutdown:
                    return
                _, _, job = heapq.heappop(self._queue)
                if job.finished:  # cancelled while queued
                    continue
                job.status = RUNNING
                job.started_at = time.time()
                self._emit_status(job)
            try:
                self._execute(job)
            except BaseException as exc:  # never kill a worker thread
                with self._lock:
                    if not job.finished:
                        self._finalize(job, FAILED, error=f"internal error: {exc!r}")

    def _execute(self, job: Job) -> None:
        request = job.request
        if job.cancel_requested:
            with self._lock:
                self._finalize(job, CANCELLED, error="cancelled before start")
            return

        if self.cache is not None:
            hit = request.lookup(self.cache, job.fingerprint)
            if hit is not None:
                with self._lock:
                    job.result = hit
                    job.document = request.document_of(hit)
                    job.cached = True
                    self._finalize(job, DONE)
                return

        attempt = 0
        while True:
            if job.past_deadline():
                with self._lock:
                    self._finalize(job, FAILED, error="deadline exceeded")
                return
            job.attempts = attempt + 1
            with self._lock:
                self.solves += 1
            solver_options, deadline_limited = self._job_solver_options(job)
            try:
                result = request.run(solver_options)
            except CancelledError:
                status = CANCELLED if job.cancel_requested else FAILED
                error = ("cancelled" if job.cancel_requested
                         else "deadline exceeded")
                with self._lock:
                    self._finalize(job, status, error=error)
                return
            except _PERMANENT as exc:
                with self._lock:
                    self._finalize(job, FAILED, error=str(exc))
                return
            except _TRANSIENT as exc:
                if attempt >= self.retries:
                    with self._lock:
                        self._finalize(
                            job, FAILED,
                            error=f"{exc} (after {attempt + 1} attempts)",
                        )
                    return
                # Exponential backoff, cut short by a cancel request.
                job._cancel.wait(self.retry_backoff * (2 ** attempt))
                attempt += 1
                continue
            except ReproError as exc:  # SynthesisError etc.: permanent
                with self._lock:
                    self._finalize(job, FAILED, error=str(exc))
                return
            break

        document = request.document_of(result)
        # The fingerprint excludes deadline_seconds (it is a property of
        # the submission, not of the problem), so a result produced under
        # a deadline-tightened time_limit may be a truncated incumbent
        # that a deadline-free solve would improve on.  Caching it would
        # serve the truncated answer to every future identical request —
        # so deadline-limited results are never stored.
        if self.cache is not None and not deadline_limited:
            request.store(self.cache, job.fingerprint, result)
        with self._lock:
            job.result = result
            job.document = document
            self._finalize(job, DONE)

    def _job_solver_options(self, job: Job) -> "tuple[SolverOptions, bool]":
        """The request's solver options plus the job layer's hooks.

        ``should_stop`` observes both the cancel flag and the wall-clock
        deadline (a sweep is many solves — the per-solve time limit alone
        cannot bound the whole job); the remaining budget also tightens
        ``time_limit`` for the next solve.

        Returns the merged options and whether the deadline tightened
        ``time_limit`` below the request's own limit — in which case the
        result may be deadline-truncated and must not be cached (the
        fingerprint does not include the deadline).
        """
        base = job.request.solver_options or SolverOptions()

        def should_stop() -> bool:
            return job.cancel_requested or job.past_deadline()

        remaining = job.remaining_seconds()
        time_limit = base.time_limit
        deadline_limited = False
        if remaining is not None and remaining < time_limit:
            time_limit = max(remaining, 0.0)
            deadline_limited = True
        options = dataclasses.replace(
            base, should_stop=should_stop, time_limit=time_limit
        )
        return options, deadline_limited

    def _finalize(self, job: Job, status: str, error: Optional[str] = None) -> None:
        """Move a job to a terminal state.  Caller holds the lock."""
        if job.finished:
            return
        job.status = status
        job.error = error
        job.finished_at = time.time()
        if self._inflight.get(job.fingerprint) is job:
            del self._inflight[job.fingerprint]
        self._emit_status(job)
        job._finished.set()
        # Retention: drop the oldest-finished jobs past the cap so a
        # long-running service's job table (and the result documents it
        # pins) stays bounded.  Callers already holding the Job object
        # keep a usable reference; only the id lookup goes away.
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.max_finished_jobs:
            evicted = self._finished_order.popleft()
            self._jobs.pop(evicted, None)

    def _emit_status(self, job: Job) -> None:
        if self._tracer is not None:
            self._tracer.emit(
                "job_status", job=job.id, status=job.status, kind=job.kind
            )


def wait_all(jobs, timeout: Optional[float] = None) -> bool:
    """Block until every job in ``jobs`` is terminal; True when all finished."""
    end = None if timeout is None else time.monotonic() + timeout
    for job in jobs:
        remaining = None if end is None else max(0.0, end - time.monotonic())
        if not job.wait(remaining):
            return False
    return True
