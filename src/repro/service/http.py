"""JSON-over-HTTP front end for the synthesis job service.

A deliberately small, stdlib-only API (``http.server`` with the threading
mixin) over a :class:`~repro.service.jobs.JobManager`:

=======  ==================  ==============================================
Method   Path                Meaning
=======  ==================  ==============================================
POST     ``/synthesize``     Submit a single-design synthesis job.
POST     ``/sweep``          Submit a Pareto-sweep job.
GET      ``/jobs/<id>``      Job state (and the result document once done).
DELETE   ``/jobs/<id>``      Request cooperative cancellation.
GET      ``/stats``          Job/dedup/cache counter snapshot.
=======  ==================  ==============================================

Request body (both POST routes)::

    {
      "problem": "example1",            // or {"graph": {...}, "library": {...}}
      "style": "p2p",                   // p2p | bus | ring
      "solver": "auto",                 // auto | highs | bozo | ...
      "priority": 0,                    // higher runs earlier
      "deadline_seconds": 30.0,         // wall-clock job budget
      "wait": 5.0,                      // block up to 5 s for the result
      // synthesize only:
      "cost_cap": 10.0, "deadline": 7.0, "objective": "min_makespan",
      // sweep only:
      "max_designs": 64, "cost_step": 1e-4
    }

Responses carry the job snapshot (see :meth:`~repro.service.jobs.Job.snapshot`):
``200`` when the job is already terminal (e.g. a cache hit with
``wait``), ``202`` while it is still queued or running.  Submitting the
same problem twice returns the same job id while the first is in flight
(single-flight), and a cached result afterwards (``"cached": true``).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.core.options import Objective
from repro.errors import ReproError
from repro.service.cache import ResultCache
from repro.service.jobs import JobManager, SweepRequest, SynthesizeRequest
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.serialization import graph_from_dict

_STYLES = {
    "p2p": InterconnectStyle.POINT_TO_POINT,
    "point_to_point": InterconnectStyle.POINT_TO_POINT,
    "bus": InterconnectStyle.BUS,
    "ring": InterconnectStyle.RING,
}

#: Longest the server will block on ``"wait": true`` before answering 202.
#: Bounded so a slow solve cannot pin an HTTP worker thread forever; the
#: client polls ``GET /jobs/<id>`` afterwards.
MAX_WAIT_SECONDS = 60.0


class BadRequest(ValueError):
    """A request body failed validation (answered with HTTP 400)."""


def _problem_from_document(spec) -> Tuple[TaskGraph, TechnologyLibrary]:
    """Resolve the ``problem`` field: a builtin name or an inline document."""
    if isinstance(spec, str):
        if spec == "example1":
            from repro.system.examples import example1_library
            from repro.taskgraph.examples import example1

            return example1(), example1_library()
        if spec == "example2":
            from repro.system.examples import example2_library
            from repro.taskgraph.examples import example2

            return example2(), example2_library()
        raise BadRequest(
            f"unknown builtin problem {spec!r} (use 'example1', 'example2', "
            f"or an inline {{graph, library}} object)"
        )
    if not isinstance(spec, dict) or "graph" not in spec or "library" not in spec:
        raise BadRequest("'problem' must be a builtin name or {graph, library}")
    try:
        graph = graph_from_dict(spec["graph"])
        library = TechnologyLibrary.from_dict(spec["library"])
    except ReproError as exc:
        raise BadRequest(f"malformed problem: {exc}") from exc
    return graph, library


def _style_from_document(name) -> InterconnectStyle:
    try:
        return _STYLES[name]
    except (KeyError, TypeError):
        raise BadRequest(
            f"unknown style {name!r} (use p2p, bus, or ring)"
        ) from None


def _objective_from_document(name) -> Objective:
    try:
        return Objective(name)
    except ValueError:
        raise BadRequest(
            f"unknown objective {name!r} "
            f"(use {', '.join(o.value for o in Objective)})"
        ) from None


def _number(body: Dict[str, Any], key: str, default=None) -> Optional[float]:
    value = body.get(key, default)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise BadRequest(f"{key!r} must be a number")
    return float(value)


def request_from_document(kind: str, body: Dict[str, Any]):
    """Build a job request from a POST body.  Raises :class:`BadRequest`."""
    if "problem" not in body:
        raise BadRequest("missing required field 'problem'")
    graph, library = _problem_from_document(body["problem"])
    style = _style_from_document(body.get("style", "p2p"))
    solver = body.get("solver", "auto")
    if kind == "synthesize":
        return SynthesizeRequest(
            graph, library, style=style, solver=solver,
            cost_cap=_number(body, "cost_cap"),
            deadline=_number(body, "deadline"),
            objective=_objective_from_document(
                body.get("objective", Objective.MIN_MAKESPAN.value)
            ),
        )
    if kind == "sweep":
        max_designs = body.get("max_designs", 64)
        if not isinstance(max_designs, int) or max_designs < 1:
            raise BadRequest("'max_designs' must be a positive integer")
        return SweepRequest(
            graph, library, style=style, solver=solver,
            max_designs=max_designs,
            cost_step=_number(body, "cost_step", 1e-4),
        )
    raise BadRequest(f"unknown request kind {kind!r}")


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's :class:`JobManager`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- routing -------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Route ``POST /synthesize`` and ``POST /sweep`` submissions."""
        if self.path in ("/synthesize", "/sweep"):
            self._submit(self.path.lstrip("/"))
        else:
            self._send_json(404, {"error": f"no such route: POST {self.path}"})

    def do_GET(self) -> None:  # noqa: N802
        """Route ``GET /stats`` and ``GET /jobs/<id>`` queries."""
        if self.path == "/stats":
            self._send_json(200, self.manager.stats())
        elif self.path.startswith("/jobs/"):
            self._job_state(self.path[len("/jobs/"):])
        else:
            self._send_json(404, {"error": f"no such route: GET {self.path}"})

    def do_DELETE(self) -> None:  # noqa: N802
        """Route ``DELETE /jobs/<id>`` cancellation requests."""
        if self.path.startswith("/jobs/"):
            self._cancel(self.path[len("/jobs/"):])
        else:
            self._send_json(404, {"error": f"no such route: DELETE {self.path}"})

    # -- handlers ------------------------------------------------------------
    def _submit(self, kind: str) -> None:
        try:
            body = self._read_body()
            request = request_from_document(kind, body)
            priority = body.get("priority", 0)
            if not isinstance(priority, int):
                raise BadRequest("'priority' must be an integer")
            deadline_seconds = _number(body, "deadline_seconds")
            wait = body.get("wait", False)
            if isinstance(wait, bool):
                wait_timeout = MAX_WAIT_SECONDS if wait else None
            elif isinstance(wait, (int, float)):
                wait_timeout = min(max(float(wait), 0.0), MAX_WAIT_SECONDS)
            else:
                raise BadRequest(
                    "'wait' must be a boolean or a number of seconds"
                )
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
            return
        job = self.manager.submit(
            request, priority=priority, deadline_seconds=deadline_seconds
        )
        if wait_timeout is not None:
            job.wait(wait_timeout)
        self._send_json(200 if job.finished else 202, job.snapshot())

    def _job_state(self, job_id: str) -> None:
        try:
            job = self.manager.get(job_id)
        except KeyError:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        self._send_json(200 if job.finished else 202, job.snapshot())

    def _cancel(self, job_id: str) -> None:
        try:
            cancelled = self.manager.cancel(job_id)
        except KeyError:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        self._send_json(200, {"job": job_id, "cancel_requested": cancelled})

    # -- plumbing ------------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("empty request body (expected a JSON object)")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        return body

    def _send_json(self, status: int, document: Dict[str, Any]) -> None:
        encoded = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Access-log line, suppressed unless the server asks for logging."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` that owns a job manager and cache.

    HTTP handling is thread-per-request; the *solves* still run on the
    manager's bounded worker pool, so a burst of submissions queues
    instead of forking off unbounded CPU work.
    """

    daemon_threads = True

    def __init__(self, address, manager: JobManager, verbose: bool = False) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager
        self.verbose = verbose

    @property
    def url(self) -> str:
        """Base URL of the bound socket (resolves ephemeral port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop accepting requests and shut the job manager down."""
        self.server_close()
        self.manager.shutdown()


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    cache: Optional[ResultCache] = None,
    trace=None,
    verbose: bool = False,
) -> ServiceServer:
    """Build a ready-to-serve :class:`ServiceServer` (not yet serving).

    Args:
        host: Bind address.
        port: TCP port; ``0`` picks an ephemeral free port (read it back
            from ``server.server_address`` / ``server.url``).
        workers: Job-manager worker threads.
        cache: Result cache shared by all jobs; defaults to a fresh
            in-memory cache with the default byte budget.
        trace: Optional trace sink receiving ``cache_*`` / ``job_status``
            events from the manager and cache.
        verbose: Log HTTP requests to stderr.

    The caller drives it with ``serve_forever()`` (and stops it with
    ``shutdown()`` + ``close()``), or uses :func:`serve` to block.
    """
    if cache is None:
        cache = ResultCache(trace=trace)
    manager = JobManager(workers=workers, cache=cache, trace=trace)
    return ServiceServer((host, port), manager, verbose=verbose)


def serve(server: ServiceServer) -> None:
    """Serve until interrupted; always shuts the manager down on the way out."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
