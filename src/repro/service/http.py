"""Threaded JSON-over-HTTP front end for the synthesis job service.

The original (PR 4) stdlib ``http.server`` transport, kept for
compatibility and for environments where the asyncio front end
(:mod:`repro.service.asgi`) is not wanted.  Since the /v1 redesign it is
a thin shell: every request is routed through the shared
:class:`~repro.service.api.ServiceApi` core, so this server speaks the
exact same surface as the ASGI app —

=======  ======================  ==========================================
Method   Path                    Meaning
=======  ======================  ==========================================
POST     ``/v1/synthesize``      Submit a single-design synthesis job.
POST     ``/v1/sweep``           Submit a Pareto-sweep job.
GET      ``/v1/jobs/<id>``       Job state (result document once done).
DELETE   ``/v1/jobs/<id>``       Request cooperative cancellation.
GET      ``/v1/stats``           Job/dedup/cache counter snapshot.
GET      ``/v1/metrics``         Latency histograms, queue/batch/pool depth.
=======  ======================  ==========================================

The unversioned spellings (``/synthesize``, ``/sweep``, ``/jobs/<id>``,
``/stats``) still work but are deprecated: they answer with a
``Deprecation: true`` header and the legacy ``{"error": "<message>"}``
error shape (see ``docs/api.md`` for the stability policy).

Request body (both POST routes)::

    {
      "problem": "example1",            // or {"graph": {...}, "library": {...}}
      "style": "p2p",                   // p2p | bus | ring
      "solver": "auto",                 // auto | highs | bozo | ...
      "priority": 0,                    // higher runs earlier
      "deadline_seconds": 30.0,         // wall-clock job budget
      "wait": 5.0,                      // block up to 5 s for the result
      // synthesize only:
      "cost_cap": 10.0, "deadline": 7.0, "objective": "min_makespan",
      // sweep only:
      "max_designs": 64, "cost_step": 1e-4
    }

Responses carry the job snapshot (see :meth:`~repro.service.jobs.Job.snapshot`):
``200`` when the job is already terminal (e.g. a cache hit with
``wait``), ``202`` while it is still queued or running, ``429`` (with
``Retry-After``) under rate limiting or queue backpressure.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

# Parsing/validation helpers live in the shared API core now; re-exported
# here because this module was their original home.
from repro.service.api import (  # noqa: F401  (re-exports)
    MAX_WAIT_SECONDS,
    BadRequest,
    ServiceApi,
    request_from_document,
)
from repro.service.cache import ResultCache
from repro.service.jobs import JobManager


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's :class:`ServiceApi`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- routing -------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Route submissions (reads the body, defers to the API core)."""
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        self._respond("POST", body)

    def do_GET(self) -> None:  # noqa: N802
        """Route job/stats/metrics queries."""
        self._respond("GET", None)

    def do_DELETE(self) -> None:  # noqa: N802
        """Route cancellation requests."""
        self._respond("DELETE", None)

    # -- plumbing ------------------------------------------------------------
    @property
    def api(self) -> ServiceApi:
        return self.server.api  # type: ignore[attr-defined]

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def _respond(self, method: str, body: Optional[bytes]) -> None:
        path, _, query = self.path.partition("?")
        response = self.api.handle(
            method, path, body,
            query=query or None, accept=self.headers.get("Accept"),
        )
        encoded = response.encode()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Access-log line, suppressed unless the server asks for logging."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` that owns a job manager and cache.

    HTTP handling is thread-per-request; the *solves* still run on the
    manager's bounded worker pool, so a burst of submissions queues
    instead of forking off unbounded CPU work.
    """

    daemon_threads = True

    def __init__(self, address, manager: JobManager, verbose: bool = False,
                 api: Optional[ServiceApi] = None) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager
        self.api = api if api is not None else ServiceApi(manager)
        self.verbose = verbose

    @property
    def url(self) -> str:
        """Base URL of the bound socket (resolves ephemeral port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop accepting requests and shut the job manager down."""
        self.server_close()
        self.manager.shutdown()


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    cache: Optional[ResultCache] = None,
    trace=None,
    verbose: bool = False,
    executor: str = "thread",
    solve_processes: int = 2,
    batching: bool = True,
    batch_linger: float = 0.0,
    max_queued: Optional[int] = None,
    rate_limit: Optional[float] = None,
    rate_burst: Optional[float] = None,
) -> ServiceServer:
    """Build a ready-to-serve :class:`ServiceServer` (not yet serving).

    Args:
        host: Bind address.
        port: TCP port; ``0`` picks an ephemeral free port (read it back
            from ``server.server_address`` / ``server.url``).
        workers: Job-manager worker threads.
        cache: Result cache shared by all jobs; defaults to a fresh
            in-memory cache with the default byte budget.
        trace: Optional trace sink receiving ``cache_*`` / ``job_status``
            events from the manager and cache.
        verbose: Log HTTP requests to stderr.
        executor: ``"thread"`` (this server's historical default) or
            ``"process"`` for the multi-process solve pool.
        solve_processes: Solve pool size for ``executor="process"``.
        batching: Coalesce compatible sweep submissions.
        max_queued: Queue bound; excess submissions answer 429.
        rate_limit: Sustained submissions/second; ``None`` disables.
        rate_burst: Token-bucket burst size.

    The caller drives it with ``serve_forever()`` (and stops it with
    ``shutdown()`` + ``close()``), or uses :func:`serve` to block.
    """
    if cache is None:
        cache = ResultCache(trace=trace)
    manager = JobManager(
        workers=workers, cache=cache, trace=trace, executor=executor,
        solve_processes=solve_processes, batching=batching,
        batch_linger=batch_linger, max_queued=max_queued,
    )
    api = ServiceApi(manager, rate_limit=rate_limit, rate_burst=rate_burst)
    return ServiceServer((host, port), manager, verbose=verbose, api=api)


def serve(server: ServiceServer) -> None:
    """Serve until interrupted; always shuts the manager down on the way out."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
