"""High-level synthesis driver.

:class:`Synthesizer` wraps the whole SOS flow — build the §3.3 MILP, solve
it, extract and validate the design — and implements the paper's
experimental methodology: sweeping a designer cost cap while minimizing
completion time to enumerate the non-inferior (Pareto) designs of §4.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.formulation import SosModel, SosModelBuilder
from repro.core.options import FormulationOptions, Objective
from repro.errors import InfeasibleError, SynthesisError
from repro.milp.solution import SolveStats, SolveStatus
from repro.obs.sinks import make_tracer
from repro.solvers.base import SolverOptions
from repro.solvers.registry import get_solver
from repro.synthesis.design import Design
from repro.synthesis.front import ParetoFront
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


class Synthesizer:
    """Synthesizes optimal application-specific multiprocessor systems.

    Example:
        >>> from repro.taskgraph import example1
        >>> from repro.system import example1_library
        >>> synth = Synthesizer(example1(), example1_library())
        >>> design = synth.synthesize()          # fastest system, any cost
        >>> front = synth.pareto_sweep()         # all non-inferior systems
        >>> design.makespan <= front[-1].makespan  # fronts are fastest-first
        True
        >>> len(front) == len(front.designs) == len(front.caps)
        True

    Args:
        graph: Application task data-flow graph.
        library: Technology library (processor types, delays, link cost).
        style: Interconnect style to synthesize for.
        solver: Backend name (``"auto"``, ``"highs"``, ``"bozo"``).
        solver_options: Options forwarded to the backend.
        options: Base formulation options; per-call arguments override the
            ``cost_cap``/``deadline``/``objective`` fields.
        constraints: Arbitrary designer constraints (§3.3.2) applied to
            every model this synthesizer builds.
        incremental: Build the MILP once and reuse it across solves,
            retightening the designer cap/deadline rows and swapping the
            objective in place instead of regenerating every constraint.
            This is what makes the Pareto sweeps cheap: each step differs
            from the previous model by two right-hand sides.  Falls back
            to per-solve rebuilds when the model cannot be retightened
            (e.g. an unbounded cost expression).
        seed_incumbent: Seed every solve with a list-scheduling heuristic
            incumbent (:mod:`repro.core.seeding`): the best ETF/HLFET
            schedule becomes a complete feasible assignment the
            branch-and-bound backend adopts before its root node, so
            pruning starts immediately.  Never changes the optimal
            objective (an invalid seed is rejected by the solver); among
            equal-objective alternative optima the tie-break may differ
            from an unseeded run, so the flag is part of the result-cache
            fingerprint.
    """

    def __init__(
        self,
        graph: TaskGraph,
        library: TechnologyLibrary,
        style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT,
        solver: str = "auto",
        solver_options: Optional[SolverOptions] = None,
        options: Optional[FormulationOptions] = None,
        constraints: Optional["DesignerConstraints"] = None,
        incremental: bool = False,
        seed_incumbent: bool = False,
    ) -> None:
        self.graph = graph
        self.library = library
        base = options or FormulationOptions()
        self.base_options = dataclasses.replace(base, style=style)
        self.solver_name = solver
        self.solver_options = solver_options
        self.constraints = constraints
        self.incremental = incremental
        self.seed_incumbent = seed_incumbent
        self._cached_model: Optional[SosModel] = None
        #: Total solver wall-clock seconds spent by this synthesizer.
        self.total_solve_seconds = 0.0
        #: The model built by the most recent solve (for size reporting).
        self.last_model: Optional[SosModel] = None
        #: Merged solver telemetry of the most recent ``synthesize`` call.
        self.last_stats: Optional[SolveStats] = None
        #: Solver telemetry accumulated over this synthesizer's lifetime.
        self.total_stats = SolveStats()

    # -- single designs ---------------------------------------------------------
    def synthesize(
        self,
        *,
        cost_cap: Optional[float] = None,
        deadline: Optional[float] = None,
        objective: Objective = Objective.MIN_MAKESPAN,
        minimize_secondary: bool = True,
        validate: bool = True,
        cache: Optional["ResultCache"] = None,
        _primary_cutoff: Optional[float] = None,
    ) -> Design:
        """Produce one optimal design.

        All arguments are keyword-only: the stable public API (see
        ``docs/api.md``) reserves the right to add parameters without
        breaking positional callers.

        Args:
            cost_cap: Designer constraint ``total cost <= cost_cap``.
            deadline: Designer constraint ``T_F <= deadline``.
            objective: Primary goal (min makespan or min cost).
            minimize_secondary: After optimizing the primary goal, run a
                second solve that optimizes the other axis subject to the
                primary optimum — so a min-makespan design is also the
                *cheapest* system achieving that makespan (this is the
                design the paper's tables report).
            validate: Re-check the design with the independent validator.
            cache: Optional :class:`~repro.service.cache.ResultCache`.
                The request is content-fingerprinted
                (:mod:`repro.service.fingerprint`); a hit returns the
                stored design without building or solving any model, a
                miss solves normally and stores the result.  The same
                keys are used by the job service, so entries are shared.
            _primary_cutoff: Known valid upper bound on the primary
                objective, forwarded to the backend for the primary solve
                only (the parallel sweep seeds speculative solves with it).
                Never changes the optimal objective value.

        Raises:
            InfeasibleError: When no system satisfies the constraints.
            SynthesisError: On extraction/validation failures.
        """
        cache_key: Optional[str] = None
        if cache is not None:
            cache_key = self._fingerprint(
                "synthesize", cost_cap=cost_cap, deadline=deadline,
                objective=objective, minimize_secondary=minimize_secondary,
            )
            hit = cache.get_design(cache_key, self.graph, self.library)
            if hit is not None:
                return hit
        options = dataclasses.replace(
            self.base_options,
            cost_cap=cost_cap,
            deadline=deadline,
            objective=objective,
        )
        built, solution = self._solve(options, cutoff=_primary_cutoff)
        primary_seconds = solution.solve_seconds
        primary_stats = solution.stats

        if minimize_secondary and objective is not Objective.WEIGHTED:
            # A weighted optimum already encodes its tradeoff; refining it
            # along either single axis would change the chosen point.
            if objective is Objective.MIN_MAKESPAN:
                refined = dataclasses.replace(
                    options,
                    objective=Objective.MIN_COST,
                    deadline=self._tightened(solution.objective),
                )
            else:
                cost_now = built.cost_expr.evaluate(solution.values)
                refined = dataclasses.replace(
                    options,
                    objective=Objective.MIN_MAKESPAN,
                    cost_cap=self._tightened(cost_now),
                )
            built, solution = self._solve(refined)
            # Account for both solves without mutating the Solution the
            # backend returned (callers may hold a reference to it).
            merged = SolveStats()
            if primary_stats is not None:
                merged.merge(primary_stats)
            if solution.stats is not None:
                merged.merge(solution.stats)
            solution = dataclasses.replace(
                solution,
                solve_seconds=solution.solve_seconds + primary_seconds,
                stats=merged,
            )
        self.last_stats = solution.stats

        # Imported here: repro.core.extraction needs the Design class, so a
        # module-level import would be circular through the package inits.
        from repro.core.extraction import extract_design
        from repro.core.polish import left_shift

        solution = left_shift(built, solution)
        design = extract_design(built, solution)
        if validate:
            problems = design.violations()
            if problems:
                raise SynthesisError(
                    "internal error: synthesized design fails independent "
                    "validation:\n  " + "\n  ".join(problems)
                )
        if cache is not None and cache_key is not None:
            cache.put_design(cache_key, design)
        return design

    def _fingerprint(self, kind: str, **params) -> str:
        """Content address of a request against this synthesizer's config.

        Shares the key space with :mod:`repro.service.jobs`, so designs
        solved through the HTTP service and through this API hit each
        other's cache entries.  Imported lazily: the service layer sits
        above synthesis and must not be a hard dependency of it.
        """
        from repro.service.fingerprint import fingerprint_request

        if self.seed_incumbent:
            # Only stamped when on, so fingerprints of unseeded requests
            # stay byte-stable across versions.
            params["seed_incumbent"] = True
        return fingerprint_request(
            kind, self.graph, self.library,
            solver=self.solver_name, solver_options=self.solver_options,
            formulation=self.base_options, constraints=self.constraints,
            **params,
        )

    def sweep_fingerprint(
        self, *, max_designs: int = 64, cost_step: float = 1e-4
    ) -> str:
        """The content address :meth:`pareto_sweep` caches under.

        Exactly the key a ``pareto_sweep(max_designs=..., cost_step=...,
        cache=...)`` call on this synthesizer would use — exposed so
        orchestration layers (the job service, :mod:`repro.dse`) can ask
        "is this sweep already solved?" without running it.
        """
        return self._fingerprint(
            "sweep", max_designs=max_designs, cost_step=cost_step
        )

    @staticmethod
    def _tightened(value: float) -> float:
        """A bound equal to an achieved optimum, padded for solver tolerance."""
        return value + 1e-6 * max(1.0, abs(value))

    def _built_for(self, options: FormulationOptions) -> SosModel:
        """The model to solve: a fresh build, or the retightened cache.

        In incremental mode the MILP is generated once (with relaxed
        designer rows) and every later solve only rewrites the cap and
        deadline right-hand sides and the objective.  Anything that cannot
        be expressed as such a mutation falls back to a full rebuild.
        """
        if self.incremental:
            if self._cached_model is None:
                base = dataclasses.replace(options, cost_cap=None, deadline=None)
                cached = SosModelBuilder(
                    self.graph, self.library, base, incremental=True
                ).build()
                if self.constraints is not None and not self.constraints.is_empty():
                    self.constraints.apply(cached)
                self._cached_model = cached
            cached = self._cached_model
            if cached.supports_retightening:
                cached.set_cost_cap(options.cost_cap)
                cached.set_deadline(options.deadline)
                cached.set_objective(options.objective)
                return cached
        built = SosModelBuilder(self.graph, self.library, options).build()
        if self.constraints is not None and not self.constraints.is_empty():
            self.constraints.apply(built)
        return built

    def _solve(self, options: FormulationOptions, cutoff: Optional[float] = None):
        built = self._built_for(options)
        self.last_model = built
        solver_options = self.solver_options
        if cutoff is not None:
            solver_options = dataclasses.replace(
                solver_options or SolverOptions(), cutoff=cutoff
            )
        if self.seed_incumbent:
            from repro.core.seeding import heuristic_incumbent

            seed = heuristic_incumbent(built)
            if seed is not None:
                solver_options = dataclasses.replace(
                    solver_options or SolverOptions(), incumbent=seed
                )
        backend = get_solver(self.solver_name, solver_options)
        solution = backend.solve(built.model)
        self.total_solve_seconds += solution.solve_seconds
        if solution.stats is not None:
            self.total_stats.merge(solution.stats)
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"no feasible system exists (cost_cap={options.cost_cap}, "
                f"deadline={options.deadline}, style={options.style.value})"
            )
        if not solution.status.has_solution:
            raise SynthesisError(
                f"solver {solution.solver_name!r} returned {solution.status.value} "
                f"without a usable solution (try a larger time limit)"
            )
        return built, solution

    def _sweep_tracer(self):
        """Tracer over the configured trace sink (``None`` when untraced)."""
        sink = self.solver_options.trace if self.solver_options else None
        return make_tracer(sink)

    # -- the paper's methodology: sweep the cost cap ------------------------------
    def pareto_sweep(
        self,
        *,
        max_designs: int = 64,
        cost_step: float = 1e-4,
        validate: bool = True,
        workers: int = 1,
        cache: Optional["ResultCache"] = None,
    ) -> ParetoFront:
        """Enumerate all non-inferior designs, fastest first.

        This reproduces §4's procedure ("generated by changing the
        constraint value for the total cost of the system, and optimizing
        the overall performance"): first synthesize the fastest system at
        any cost, then repeatedly cap the cost just below the previous
        design's and re-optimize, until the cap is infeasible.

        Every returned design is non-inferior: each solve minimizes
        makespan under the cap and then minimizes cost at that makespan, so
        successive designs are strictly cheaper and strictly slower.

        Args:
            max_designs: Safety bound on the front size.
            cost_step: How far below the previous cost the next cap sits
                (any value smaller than the cost granularity is exact).
            validate: Independently validate every design.
            workers: Solve cost caps concurrently on ``workers`` processes
                (:mod:`repro.synthesis.parallel_sweep`).  The front is
                identical to the serial sweep — the returned designs come
                from hint-free solves at exactly the serial caps —
                speculative probe solves only shorten the critical path.
            cache: Optional :class:`~repro.service.cache.ResultCache`.
                A hit returns the stored front without solving anything; a
                miss sweeps normally and stores the whole front under the
                request's content fingerprint (shared with the service).

        Returns:
            A :class:`~repro.synthesis.front.ParetoFront` — iterates and
            indexes exactly like the ``List[Design]`` this method used to
            return, and additionally carries the per-design cost caps and
            the sweep's merged solver telemetry.
        """
        cache_key: Optional[str] = None
        if cache is not None:
            cache_key = self._fingerprint(
                "sweep", max_designs=max_designs, cost_step=cost_step
            )
            hit = cache.get_front(cache_key, self.graph, self.library)
            if hit is not None:
                return hit
        if workers > 1:
            from repro.synthesis.parallel_sweep import parallel_pareto_sweep

            front = parallel_pareto_sweep(
                self, max_designs, cost_step, validate, workers
            )
            if cache is not None and cache_key is not None:
                cache.put_front(cache_key, front)
            return front
        tracer = self._sweep_tracer()
        sweep_stats = SolveStats()
        front: List[Design] = []
        caps: List[Optional[float]] = []
        cap: Optional[float] = None
        while len(front) < max_designs:
            try:
                design = self.synthesize(cost_cap=cap, validate=validate)
            except InfeasibleError:
                if tracer is not None:
                    tracer.emit(
                        "sweep_step", index=len(front), kind="canonical",
                        feasible=False,
                    )
                break
            front.append(design)
            caps.append(cap)
            if self.last_stats is not None:
                sweep_stats.merge(self.last_stats)
            if tracer is not None:
                tracer.emit(
                    "sweep_step", index=len(front) - 1, kind="canonical",
                    feasible=True,
                )
            cap = design.cost - cost_step
            if cap < 0:
                break
        if not front:
            raise SynthesisError("pareto sweep produced no designs (infeasible instance?)")
        result = ParetoFront(front, caps=caps, stats=sweep_stats)
        if cache is not None and cache_key is not None:
            cache.put_front(cache_key, result)
        return result

    def pareto_sweep_prefixes(
        self,
        targets: List[int],
        *,
        cost_step: float = 1e-4,
        validate: bool = True,
        live_target=None,
    ) -> "List[ParetoFront]":
        """One incremental sweep answering several ``max_designs`` at once.

        The batching entry point of the service tier: several sweep
        requests that differ *only* in ``max_designs`` are one
        computation, because each Pareto step depends only on the
        previous design's cost — the front for ``max_designs=k`` is
        exactly the first ``k`` designs of the front for any larger
        bound.  This method runs the sweep loop once, to
        ``max(targets)``, against the retightened incremental model, and
        slices a front per target out of the shared pass.

        Per-member telemetry stays exact: each step's
        :class:`~repro.milp.solution.SolveStats` is recorded separately
        and the returned front for target ``k`` carries the merge of the
        first ``k`` steps — the same counters a standalone
        ``pareto_sweep(max_designs=k)`` would have accumulated.  (Wall
        clock inside the stats is shared across members by construction;
        the *designs and caps* are byte-identical to standalone sweeps,
        which the test suite asserts.)

        Args:
            targets: One ``max_designs`` bound per caller, in caller
                order.  Duplicates are fine (they share the slice).
            cost_step: Shared cap decrement (members must agree on it to
                be batched together).
            validate: Independently validate every design.
            live_target: Optional zero-argument callable returning the
                largest prefix still wanted (the service passes one that
                shrinks as batched callers cancel).  Checked between
                solves; the sweep never runs past it, but values larger
                than ``max(targets)`` are ignored.

        Returns:
            One :class:`~repro.synthesis.front.ParetoFront` per entry of
            ``targets``, in order.

        Raises:
            SynthesisError: When the sweep produces no designs at all
                (every member would have failed identically).
        """
        if not targets or any(t < 1 for t in targets):
            raise ValueError("targets must be positive max_designs bounds")
        goal = max(targets)
        tracer = self._sweep_tracer()
        designs: List[Design] = []
        caps: List[Optional[float]] = []
        step_stats: List[Optional[SolveStats]] = []
        cap: Optional[float] = None
        while len(designs) < goal:
            if live_target is not None:
                goal = min(goal, max(1, int(live_target())))
                if len(designs) >= goal:
                    break
            try:
                design = self.synthesize(cost_cap=cap, validate=validate)
            except InfeasibleError:
                if tracer is not None:
                    tracer.emit(
                        "sweep_step", index=len(designs), kind="batched",
                        feasible=False,
                    )
                break
            designs.append(design)
            caps.append(cap)
            step_stats.append(self.last_stats)
            if tracer is not None:
                tracer.emit(
                    "sweep_step", index=len(designs) - 1, kind="batched",
                    feasible=True,
                )
            cap = design.cost - cost_step
            if cap < 0:
                break
        if not designs:
            raise SynthesisError(
                "pareto sweep produced no designs (infeasible instance?)"
            )
        fronts: List[ParetoFront] = []
        for target in targets:
            take = min(target, len(designs))
            merged = SolveStats()
            for stats in step_stats[:take]:
                if stats is not None:
                    merged.merge(stats)
            fronts.append(
                ParetoFront(designs[:take], caps=caps[:take], stats=merged)
            )
        return fronts

    def pareto_sweep_by_deadline(
        self,
        *,
        max_designs: int = 64,
        time_step: float = 1e-4,
        validate: bool = True,
    ) -> ParetoFront:
        """Enumerate the non-inferior designs from the other axis.

        The dual of :meth:`pareto_sweep`: start from the cheapest system at
        any speed, then repeatedly demand completion strictly faster than
        the previous design and re-minimize cost, until no system is fast
        enough.  Returns the front cheapest-first (the reverse order of
        :meth:`pareto_sweep`); the two sweeps find the same front, which
        the test suite asserts.

        Args:
            max_designs: Safety bound on the front size.
            time_step: How far below the previous makespan the next
                deadline sits.
            validate: Independently validate every design.

        Returns:
            A :class:`~repro.synthesis.front.ParetoFront` whose ``caps``
            hold the deadline used for each design (``None`` for the
            unconstrained first solve).
        """
        tracer = self._sweep_tracer()
        sweep_stats = SolveStats()
        front: List[Design] = []
        caps: List[Optional[float]] = []
        deadline: Optional[float] = None
        while len(front) < max_designs:
            try:
                design = self.synthesize(
                    deadline=deadline, objective=Objective.MIN_COST,
                    validate=validate,
                )
            except InfeasibleError:
                if tracer is not None:
                    tracer.emit(
                        "sweep_step", index=len(front), kind="canonical",
                        feasible=False,
                    )
                break
            front.append(design)
            caps.append(deadline)
            if self.last_stats is not None:
                sweep_stats.merge(self.last_stats)
            if tracer is not None:
                tracer.emit(
                    "sweep_step", index=len(front) - 1, kind="canonical",
                    feasible=True,
                )
            deadline = design.makespan - time_step
            if deadline <= 0:
                break
        if not front:
            raise SynthesisError(
                "deadline sweep produced no designs (infeasible instance?)"
            )
        return ParetoFront(front, caps=caps, stats=sweep_stats)


#: Keyword arguments of :func:`synthesize` that configure the
#: :class:`Synthesizer` itself rather than the single solve.
_CONSTRUCTOR_KEYS = frozenset(
    {"style", "solver", "solver_options", "options", "constraints",
     "incremental", "seed_incumbent"}
)


def synthesize(graph: TaskGraph, library: TechnologyLibrary, **opts) -> Design:
    """Synthesize one optimal design in a single call.

    The convenience entrypoint (also exported as ``repro.synthesize``)
    for callers who do not need to hold a :class:`Synthesizer` across
    several solves.  Keyword arguments are split automatically:
    configuration keys (``style``, ``solver``, ``solver_options``,
    ``options``, ``constraints``, ``incremental``) go to the
    :class:`Synthesizer` constructor, everything else (``cost_cap``,
    ``deadline``, ``objective``, ``minimize_secondary``, ``validate``,
    ``cache``) to :meth:`Synthesizer.synthesize`.

    Example::

        import repro
        design = repro.synthesize(graph, library, cost_cap=10.0, solver="bozo")

    Returns:
        The optimal :class:`~repro.synthesis.design.Design`.
    """
    constructor = {k: v for k, v in opts.items() if k in _CONSTRUCTOR_KEYS}
    call = {k: v for k, v in opts.items() if k not in _CONSTRUCTOR_KEYS}
    return Synthesizer(graph, library, **constructor).synthesize(**call)
