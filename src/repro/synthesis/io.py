"""Design persistence: save a synthesized design, reload it later.

``Design.to_dict`` captures structure, mapping, schedule, and metrics; this
module adds the inverse, which needs the problem context (graph + library)
to rebuild processor instances and re-derive costs.  The CLI's ``validate``
command and any archival workflow build on this.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import SynthesisError
from repro.schedule.schedule import Schedule
from repro.synthesis.design import Design
from repro.system.architecture import Architecture, Link
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


def design_from_dict(
    graph: TaskGraph,
    library: TechnologyLibrary,
    data: Dict,
) -> Design:
    """Rebuild a :class:`Design` from :meth:`Design.to_dict` output.

    Args:
        graph: The task graph the design was synthesized for (designs do
            not embed their problem; pass the same one).
        library: The technology library (for instances and pricing).
        data: The serialized design document.

    Raises:
        SynthesisError: On malformed documents or references to unknown
            processors/subtasks.
    """
    try:
        style = InterconnectStyle(data.get("style", "point_to_point"))
        schedule = Schedule.from_dict(data["schedule"])
        mapping = dict(data["mapping"])
        processor_names = list(data["processors"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SynthesisError(f"malformed design document: {exc}") from exc

    instances = {inst.name: inst for inst in library.instances()}
    missing = [name for name in processor_names if name not in instances]
    if missing:
        raise SynthesisError(f"design references unknown processors: {missing}")
    unknown_tasks = [task for task in mapping if task not in graph]
    if unknown_tasks:
        raise SynthesisError(f"design references unknown subtasks: {unknown_tasks}")

    links = []
    for label in data.get("links", ()):  # "l[p1a,p2a]"
        inner = label[2:-1] if label.startswith("l[") and label.endswith("]") else label
        try:
            source, dest = inner.split(",")
        except ValueError as exc:
            raise SynthesisError(f"malformed link label {label!r}") from exc
        links.append(Link(source, dest))

    architecture = Architecture(
        processors=[instances[name] for name in processor_names],
        links=links,
        style=style,
        library=library,
        ring_order=tuple(data.get("ring_order", ())),
    )
    return Design(
        graph=graph,
        library=library,
        style=style,
        architecture=architecture,
        mapping=mapping,
        schedule=schedule,
        makespan=float(data.get("makespan", schedule.makespan)),
        cost=float(data.get("cost", architecture.total_cost())),
        solver_name=str(data.get("solver", "")),
        solve_seconds=float(data.get("solve_seconds", 0.0)),
        proven_optimal=bool(data.get("proven_optimal", False)),
    )


def design_to_document(design: Design) -> Dict:
    """The full-fidelity JSON document for a design.

    :meth:`Design.to_dict` plus the fields :func:`design_from_dict` needs
    for an exact round trip (explicit cost, ring order).  This is what
    :func:`save_design` writes and what the service result cache stores.
    """
    document = design.to_dict()
    document["cost"] = design.cost
    if design.architecture.ring_order:
        document["ring_order"] = list(design.architecture.ring_order)
    return document


def save_design(design: Design, path: Union[str, Path]) -> None:
    """Write a design to a JSON file."""
    Path(path).write_text(json.dumps(design_to_document(design), indent=2) + "\n")


def load_design(
    graph: TaskGraph,
    library: TechnologyLibrary,
    path: Union[str, Path],
) -> Design:
    """Read a design from a JSON file (inverse of :func:`save_design`)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SynthesisError(f"invalid JSON in {path}: {exc}") from exc
    return design_from_dict(graph, library, data)
