"""High-level synthesis API: the facade most users interact with."""

from repro.synthesis.design import Design
from repro.synthesis.io import design_from_dict, load_design, save_design
from repro.synthesis.synthesizer import Synthesizer

__all__ = [
    "Design",
    "design_from_dict",
    "load_design",
    "save_design",
    "Synthesizer",
]
