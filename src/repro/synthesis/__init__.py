"""High-level synthesis API: the facade most users interact with."""

from repro.synthesis.design import Design
from repro.synthesis.front import ParetoFront
from repro.synthesis.io import design_from_dict, load_design, save_design
from repro.synthesis.synthesizer import Synthesizer, synthesize

__all__ = [
    "Design",
    "ParetoFront",
    "design_from_dict",
    "load_design",
    "save_design",
    "Synthesizer",
    "synthesize",
]
