"""The result object of a synthesis run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.schedule.gantt import describe_schedule, render_gantt
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate_schedule
from repro.system.architecture import Architecture
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


@dataclass
class Design:
    """A synthesized multiprocessor system plus its static schedule.

    This is the paper's triple output (§3.4.2): the multiprocessor system
    (processors + interconnect), the subtask schedule, and the detailed
    timing of every computation and data transfer.

    Attributes:
        graph: The application task graph the design was synthesized for.
        library: The technology library used.
        style: Interconnect style.
        architecture: Bought processors and communication structure.
        mapping: ``subtask name -> processor instance name`` (the σ's).
        schedule: All timed events.
        makespan: Completion time ``T_F`` (the paper's "performance" column).
        cost: Total system cost (processors + links).
        solver_name: Backend that produced the MILP solution.
        solve_seconds: Wall-clock solve time (the paper's "runtime" column).
        proven_optimal: Whether the MILP was solved to proven optimality.
        nodes: Branch-and-bound nodes processed.
    """

    graph: TaskGraph
    library: TechnologyLibrary
    style: InterconnectStyle
    architecture: Architecture
    mapping: Dict[str, str]
    schedule: Schedule
    makespan: float
    cost: float
    solver_name: str = ""
    solve_seconds: float = 0.0
    proven_optimal: bool = True
    nodes: int = 0

    # -- validation ------------------------------------------------------------
    def violations(self) -> List[str]:
        """Re-check this design with the independent schedule validator."""
        return validate_schedule(
            self.graph, self.library, self.schedule,
            architecture=self.architecture, style=self.style,
        )

    def is_valid(self) -> bool:
        """True when the independent validator finds no violation."""
        return not self.violations()

    # -- dominance (the paper's non-inferiority notion, §4.1 footnote) ---------
    def dominates(self, other: "Design", tol: float = 1e-9) -> bool:
        """True when this design is at least as good on both axes and
        strictly better on one (lower cost, lower makespan)."""
        no_worse = self.cost <= other.cost + tol and self.makespan <= other.makespan + tol
        better = self.cost < other.cost - tol or self.makespan < other.makespan - tol
        return no_worse and better

    # -- presentation ------------------------------------------------------------
    def processors_used(self) -> List[str]:
        """Instance names actually executing subtasks."""
        return self.schedule.processors()

    def num_processors(self) -> int:
        """Number of processors bought."""
        return len(self.architecture.processors)

    def num_links(self) -> int:
        """Number of point-to-point links (or ring segments) built."""
        return len(self.architecture.links)

    def describe(self) -> str:
        """Multi-line description in the paper's design-paragraph style."""
        header = (
            f"cost {self.cost:g}, performance {self.makespan:g} "
            f"({'optimal' if self.proven_optimal else 'incumbent'})\n"
            f"{self.architecture.summary()}"
        )
        return header + "\n" + describe_schedule(self.schedule)

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart of the schedule."""
        return render_gantt(self.schedule, width=width)

    def to_dict(self) -> dict:
        """JSON-compatible summary (structure, mapping, schedule, metrics)."""
        return {
            "graph": self.graph.name,
            "style": self.style.value,
            "processors": sorted(self.architecture.processor_names()),
            "links": sorted(link.label for link in self.architecture.links),
            "mapping": dict(self.mapping),
            "schedule": self.schedule.to_dict(),
            "makespan": self.makespan,
            "cost": self.cost,
            "solver": self.solver_name,
            "solve_seconds": self.solve_seconds,
            "proven_optimal": self.proven_optimal,
        }

    def __repr__(self) -> str:
        return (
            f"Design(cost={self.cost:g}, makespan={self.makespan:g}, "
            f"processors={sorted(self.architecture.processor_names())})"
        )
