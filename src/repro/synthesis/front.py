"""The :class:`ParetoFront` result object returned by the sweeps.

Historically the sweeps returned a bare ``List[Design]``.  The front is
now a first-class object carrying the per-step constraint values and the
merged solver telemetry alongside the designs — while remaining fully
sequence-compatible (iteration, indexing, ``len``, equality against a
plain list) so existing callers keep working unchanged.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Iterator, List, Optional, Union, overload

from repro.milp.solution import SolveStats
from repro.synthesis.design import Design


class ParetoFront(Sequence):
    """The non-inferior designs found by a Pareto sweep, fastest first.

    Behaves like the ``List[Design]`` the sweeps used to return —
    ``front[0]``, ``len(front)``, ``for design in front``, and equality
    against a list of designs all work — while also exposing the sweep's
    metadata.

    Attributes:
        designs: The non-inferior designs, in sweep order.
        caps: The constraint value each design was synthesized under —
            cost caps for :meth:`~repro.synthesis.synthesizer.Synthesizer.pareto_sweep`,
            deadlines for
            :meth:`~repro.synthesis.synthesizer.Synthesizer.pareto_sweep_by_deadline`;
            ``None`` marks the unconstrained first solve.  Same length as
            ``designs``.
        stats: Solver telemetry merged over every solve of this sweep
            (probes included for the parallel sweep); ``None`` when the
            producer did not track it.
    """

    def __init__(
        self,
        designs: List[Design],
        caps: Optional[List[Optional[float]]] = None,
        stats: Optional[SolveStats] = None,
    ) -> None:
        self.designs = list(designs)
        self.caps = list(caps) if caps is not None else [None] * len(self.designs)
        if len(self.caps) != len(self.designs):
            raise ValueError(
                f"caps ({len(self.caps)}) and designs ({len(self.designs)}) "
                "must have the same length"
            )
        self.stats = stats

    # -- sequence protocol (back-compat with the old List[Design] return) --
    def __len__(self) -> int:
        """Number of designs on the front."""
        return len(self.designs)

    @overload
    def __getitem__(self, index: int) -> Design: ...

    @overload
    def __getitem__(self, index: slice) -> List[Design]: ...

    def __getitem__(self, index: Union[int, slice]):
        """Index like a list; slices return plain ``List[Design]``."""
        return self.designs[index]

    def __iter__(self) -> Iterator[Design]:
        """Iterate over the designs in sweep order."""
        return iter(self.designs)

    def __eq__(self, other: object) -> bool:
        """Equal to another front, list, or tuple with the same designs.

        Metadata (``caps``, ``stats``) is deliberately excluded so
        pre-existing assertions like ``front == [design_a, design_b]``
        keep passing.
        """
        if isinstance(other, ParetoFront):
            return self.designs == other.designs
        if isinstance(other, (list, tuple)):
            return self.designs == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        """Short display form."""
        return f"ParetoFront({len(self.designs)} designs)"

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible document (designs + caps + stats).

        Each design serializes via
        :func:`repro.synthesis.io.design_to_document` — the same schema
        :func:`repro.synthesis.io.save_design` writes — so single designs
        round-trip through :func:`repro.synthesis.io.design_from_dict` and
        whole fronts through :meth:`from_dict`.
        """
        from repro.synthesis.io import design_to_document

        return {
            "designs": [design_to_document(design) for design in self.designs],
            "caps": self.caps,
            "stats": self.stats.as_dict() if self.stats is not None else None,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the front (designs + caps + stats) as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict, graph, library) -> "ParetoFront":
        """Rebuild a front from :meth:`to_dict` output.

        Designs do not embed their problem, so the graph and library the
        front was synthesized for must be supplied (same contract as
        :func:`repro.synthesis.io.design_from_dict`).

        Raises:
            SynthesisError: On malformed documents.
        """
        from repro.errors import SynthesisError
        from repro.synthesis.io import design_from_dict

        if not isinstance(data, dict) or "designs" not in data:
            raise SynthesisError("malformed pareto-front document")
        designs = [
            design_from_dict(graph, library, entry) for entry in data["designs"]
        ]
        raw_caps = data.get("caps")
        caps = (
            [None if cap is None else float(cap) for cap in raw_caps]
            if raw_caps is not None
            else None
        )
        stats = (
            SolveStats.from_dict(data["stats"])
            if data.get("stats") is not None
            else None
        )
        return cls(designs, caps=caps, stats=stats)

    @classmethod
    def from_json(cls, text: str, graph, library) -> "ParetoFront":
        """Inverse of :meth:`to_json`: parse a front from its JSON string."""
        from repro.errors import SynthesisError

        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SynthesisError(f"invalid pareto-front JSON: {exc}") from exc
        return cls.from_dict(data, graph, library)
