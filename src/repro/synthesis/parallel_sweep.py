"""Concurrent Pareto sweep: solve independent cost caps in parallel.

The serial sweep (:meth:`Synthesizer.pareto_sweep`) is a chain — each
cap is the previous design's cost minus ``cost_step`` — so naively it
cannot be parallelized without changing which designs come back.  This
module parallelizes it *without* changing the front, using two facts:

* A solve at **any** cap ``m`` returns the non-inferior point with the
  largest cost ``<= m`` (min makespan under the cap, then min cost at
  that makespan), and simultaneously proves there is no front point with
  cost in ``(result, m]``.
* The front **costs** a solve discovers are optimal objective values,
  so they are unchanged by seeding the solver with a valid objective
  ``cutoff`` — only the returned *schedule* could differ.

So the orchestrator races two kinds of jobs on a fork pool:

* **Probes** bisect the cost range between the fastest design's cost and
  the cheapest feasible cost (a min-cost "floor" solve), discovering
  front costs early.  Each probe is seeded with a makespan ``cutoff``
  from the nearest finished design of cost at or below its cap — the
  "warm start from the nearest finished neighbor" — and runs cold when
  no neighbor has finished.  Probe designs are **always discarded**;
  only their ``(cost, makespan)`` coordinates are kept.
* **Canonical** jobs re-run exactly the serial chain solves — the same
  caps, no cutoff, same solver options — and their designs are the ones
  returned.  A canonical job at cap ``c - cost_step`` is dispatched as
  soon as ``c`` is *proven* to be a chain cost, i.e. the interval
  between ``c - cost_step`` and the next discovered cost below it is
  covered by prove-empty intervals from finished jobs.

Because every returned design comes from a hint-free solve at exactly
the serial cap with the serial options, the front is identical to the
``workers=1`` sweep — order, costs, makespans, schedules.  Probes only
shorten the critical path.  Telemetry from every job (probes included)
is merged into the synthesizer's ``total_stats``.

With ``SolverOptions(deterministic=False)`` (fast mode) probe designs
are shipped back and stand in for canonical ones: once a chain successor
is proven and a probe already solved at that cost, the canonical
re-solve is skipped.  Front costs and makespans are provably unchanged —
a probe's objectives equal the canonical solve's — but the schedule at a
front point may be any alternative optimum, so byte-level front identity
is only guaranteed in deterministic mode.

Assumption inherited from the serial sweep: ``cost_step`` is smaller
than the gap between any two adjacent front costs (the serial chain
makes the same assumption when it steps by ``cost_step``).  Platforms
without ``fork`` fall back to the serial sweep.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.options import Objective
from repro.errors import CancelledError, InfeasibleError, SynthesisError
from repro.milp.solution import SolveStats
from repro.obs.sinks import make_tracer
from repro.solvers.base import SolverOptions
from repro.synthesis.design import Design
from repro.synthesis.front import ParetoFront

#: Fork-inherited context: the synthesizer whose configuration (graph,
#: library, formulation options, solver choice) every worker replicates.
_SWEEP_CTX: Dict[str, Any] = {}

_EPS = 1e-9


def _tol(*values: float) -> float:
    return _EPS * max(1.0, *(abs(v) for v in values))


def _sweep_worker(job: Tuple[str, Optional[float], Optional[float]]):
    """Run one sweep solve in a pool worker.

    Returns ``(kind, cap, design_or_None, cost, makespan, stats, seconds)``
    with ``cost = nan`` signalling an infeasible cap.  Probe and floor
    jobs drop the design before returning so only two floats cross the
    process pipe.
    """
    kind, cap, cutoff = job
    synth = _SWEEP_CTX["synth"]
    fast = _SWEEP_CTX.get("fast", False)
    # The forked synthesizer is disposable: zero its accumulators so this
    # job's telemetry can be shipped back and merged by the parent.
    synth.total_stats = SolveStats()
    synth.total_solve_seconds = 0.0
    try:
        if kind == "floor":
            design = synth.synthesize(
                objective=Objective.MIN_COST,
                minimize_secondary=False,
                validate=False,
            )
        else:
            design = synth.synthesize(
                cost_cap=cap,
                validate=_SWEEP_CTX["validate"]
                and (kind == "canonical" or fast),
                _primary_cutoff=cutoff,
            )
    except InfeasibleError:
        return (kind, cap, None, math.nan, math.nan,
                synth.total_stats, synth.total_solve_seconds)
    # Deterministic sweeps ship only canonical designs (front identity
    # with the serial sweep, schedules included).  Fast sweeps also ship
    # probe designs: a probe's (cost, makespan) is the same optimum a
    # canonical solve at the matching chain cap would return — only the
    # schedule may differ — so the canonical re-solve can be skipped.
    # Floor designs never ship (min-cost solves don't minimize makespan).
    shipped = design if kind == "canonical" or (fast and kind == "probe") else None
    return (kind, cap, shipped, design.cost, design.makespan,
            synth.total_stats, synth.total_solve_seconds)


def _covered(lo: float, hi: float, spans: List[Tuple[float, float]]) -> bool:
    """True when the half-open cost interval ``(lo, hi]`` is covered by
    the union of prove-empty spans ``(a, b]``."""
    eps = _tol(lo, hi)
    if hi <= lo + eps:
        return True
    reached = lo
    for a, b in sorted(spans):
        if a > reached + eps:
            break
        reached = max(reached, b)
        if reached >= hi - eps:
            return True
    return reached >= hi - eps


class _SweepState:
    """Bookkeeping of discovered front points and prove-empty intervals."""

    def __init__(self, cost_step: float) -> None:
        self.step = cost_step
        #: Discovered front points: cost -> makespan.
        self.points: Dict[float, float] = {}
        #: Intervals ``(r, m]`` proven to contain no front cost.
        self.empty: List[Tuple[float, float]] = []
        #: Canonical results keyed by chain index.
        self.designs: Dict[float, Design] = {}
        self.top: Optional[float] = None  # cost of the fastest design
        self.floor: Optional[float] = None  # cheapest feasible cost

    def add_point(self, cost: float, makespan: float) -> None:
        for known in self.points:
            if abs(known - cost) <= _tol(known, cost):
                return
        self.points[cost] = makespan

    def chain(self, max_designs: int) -> Tuple[List[float], bool]:
        """The serial chain prefix provable so far.

        Returns ``(costs, complete)`` where ``complete`` means the chain
        provably ends (its last cost is the floor) or hit ``max_designs``.
        """
        if self.top is None:
            return [], False
        chain = [self.top]
        while len(chain) < max_designs:
            cap = chain[-1] - self.step
            if self.floor is not None and cap < self.floor - _tol(cap):
                return chain, True  # nothing cheaper can exist
            below = [c for c in self.points if c <= cap + _tol(cap, c)]
            if not below:
                return chain, False
            nxt = max(below)
            # nxt is the chain successor iff (nxt, cap] provably holds no
            # other front cost.
            if not _covered(nxt, cap, self.empty):
                return chain, False
            chain.append(nxt)
        return chain, True

    def cutoff_for(self, cap: float) -> Optional[float]:
        """Makespan of the nearest finished neighbor with cost <= cap."""
        below = [c for c in self.points if c <= cap + _tol(cap, c)]
        if not below:
            return None
        return self.points[max(below)]

    def probe_targets(self, outstanding: List[float]) -> List[float]:
        """Midpoints of the widest unexplored cost regions.

        A region is a maximal subinterval of ``(floor, top - step]`` not
        covered by prove-empty spans; regions already holding an
        outstanding probe cap are skipped.
        """
        if self.top is None or self.floor is None:
            return []
        lo, hi = self.floor, self.top - self.step
        if hi <= lo + _tol(lo, hi):
            return []
        # Walk the prove-empty union to list uncovered regions.
        regions: List[Tuple[float, float]] = []
        reached = lo
        for a, b in sorted(self.empty) + [(hi, hi)]:
            if a > reached + _tol(reached, a):
                regions.append((reached, min(a, hi)))
            reached = max(reached, b)
            if reached >= hi:
                break
        targets = []
        for a, b in regions:
            if b - a <= max(self.step, _tol(a, b)):
                continue
            if any(a - _EPS <= cap <= b + _EPS for cap in outstanding):
                continue
            targets.append((b - a, (a + b) / 2.0))
        return [mid for _, mid in sorted(targets, reverse=True)]


def parallel_pareto_sweep(
    synth,
    max_designs: int,
    cost_step: float,
    validate: bool,
    workers: int,
) -> ParetoFront:
    """Drive the concurrent sweep; called by ``Synthesizer.pareto_sweep``."""
    try:
        mp = multiprocessing.get_context("fork")
    except ValueError:  # no fork (e.g. Windows): keep the serial semantics
        return synth.pareto_sweep(
            max_designs=max_designs, cost_step=cost_step, validate=validate
        )

    # Children must not nest process pools: force single-worker backends.
    # Trace sinks and progress callbacks are also stripped — a forked
    # child writing to the parent's open sink file would interleave
    # garbage; the orchestrator alone emits (coarse) sweep_step events.
    saved_options = synth.solver_options
    synth.solver_options = dataclasses.replace(
        saved_options or SolverOptions(), workers=1, frontier_target=0, cutoff=None,
        trace=None, on_progress=None, verbose=False, should_stop=None,
    )
    tracer = make_tracer(saved_options.trace if saved_options else None)
    should_stop = saved_options.should_stop if saved_options else None
    fast = bool(saved_options is not None and not saved_options.deterministic)
    _SWEEP_CTX.clear()
    _SWEEP_CTX.update(synth=synth, validate=validate, fast=fast)
    try:
        with mp.Pool(workers) as pool:
            front = _orchestrate(
                pool, synth, max_designs, cost_step, workers, tracer=tracer,
                should_stop=should_stop, fast=fast,
            )
    finally:
        _SWEEP_CTX.clear()
        synth.solver_options = saved_options
    if not front:
        raise SynthesisError(
            "pareto sweep produced no designs (infeasible instance?)"
        )
    return front


def _orchestrate(
    pool, synth, max_designs, cost_step, workers, tracer=None,
    should_stop=None, fast=False,
) -> ParetoFront:
    """Dispatch canonical/probe/floor jobs and assemble the front.

    Emits one ``sweep_step`` trace event per finished job (in completion
    order) when the synthesizer's solver options carry a trace sink.
    ``should_stop`` is the caller's cancellation hook, polled between
    completions (children run with it stripped); raising
    :class:`CancelledError` unwinds through the pool's context manager,
    which terminates any in-flight solves.

    ``fast`` (``SolverOptions(deterministic=False)``) lets probe designs
    stand in for canonical ones: when a proven chain successor already
    has a probe-shipped design, the canonical re-solve at that cap is
    skipped entirely.  Front costs and makespans are still identical to
    the serial sweep; only schedules may differ among alternative optima.
    """
    state = _SweepState(cost_step)
    sweep_stats = SolveStats()
    steps_done = 0
    pending: List[Tuple[str, Optional[float], Any]] = []
    dispatched_caps: List[float] = []  # canonical caps already launched
    outstanding_probes: List[float] = []

    def submit(kind: str, cap: Optional[float], cutoff: Optional[float]) -> None:
        pending.append((kind, cap, pool.apply_async(_sweep_worker, ((kind, cap, cutoff),))))

    submit("canonical", None, None)
    submit("floor", None, None)

    while pending:
        if should_stop is not None and should_stop():
            raise CancelledError(
                f"pareto sweep cancelled with {len(pending)} solves in flight"
            )
        ready = [entry for entry in pending if entry[2].ready()]
        if not ready:
            time.sleep(0.005)
            continue
        for entry in ready:
            pending.remove(entry)
            kind, cap, result = entry
            (kind, cap, design, cost, makespan, stats, seconds) = result.get()
            synth.total_stats.merge(stats)
            sweep_stats.merge(stats)
            synth.total_solve_seconds += seconds
            if tracer is not None:
                tracer.emit(
                    "sweep_step", index=steps_done, kind=kind,
                    feasible=not math.isnan(cost),
                )
            steps_done += 1
            if kind == "probe":
                outstanding_probes.remove(cap)
            if math.isnan(cost):
                # Infeasible cap: everything at or below it is empty.  The
                # canonical chain provably ends above this cap.
                if cap is not None and state.floor is None:
                    state.floor = cap + cost_step
                continue
            state.add_point(cost, makespan)
            if kind == "floor":
                state.floor = cost if state.floor is None else max(state.floor, cost)
            elif kind == "canonical":
                if cap is None:
                    state.top = cost
                state.designs[cost] = design
                state.empty.append((cost, math.inf if cap is None else cap))
            else:
                if design is not None and not any(
                    abs(c - cost) <= _tol(c, cost) for c in state.designs
                ):
                    state.designs[cost] = design  # fast mode ships probes
                state.empty.append((cost, cap))

        chain, complete = state.chain(max_designs)
        # Canonical dispatch: each proven chain cost unlocks the next cap.
        for idx, c in enumerate(chain):
            if idx + 1 >= max_designs:
                break  # successors would fall beyond the requested front
            cap = c - cost_step
            if cap < 0:
                continue
            if state.floor is not None and cap < state.floor - _tol(cap):
                continue  # provably infeasible; the serial loop stops here
            if any(abs(cap - d) <= _tol(cap, d) for d in dispatched_caps):
                continue
            if (
                fast
                and idx + 1 < len(chain)
                and any(
                    abs(c2 - chain[idx + 1]) <= _tol(c2, chain[idx + 1])
                    for c2 in state.designs
                )
            ):
                continue  # successor proven and its design already in hand
            dispatched_caps.append(cap)
            submit("canonical", cap, None)
        # Probe dispatch: bisect unexplored cost regions, capped at pool size.
        if not complete:
            budget = max(0, workers - len(pending))
            for mid in state.probe_targets(outstanding_probes)[:budget]:
                outstanding_probes.append(mid)
                submit("probe", mid, state.cutoff_for(mid))

    synth.total_stats.workers = max(synth.total_stats.workers, workers)
    sweep_stats.workers = max(sweep_stats.workers, workers)

    # Assemble the front by replaying the chain over canonical designs.
    # The cap recorded per design is the one its canonical solve ran
    # under: None for the unconstrained top, the previous design's cost
    # minus the step after that — exactly the serial chain's caps.
    front: List[Design] = []
    caps: List[Optional[float]] = []
    if state.top is None:
        return ParetoFront(front, caps=caps, stats=sweep_stats)
    cost = state.top
    cap_used: Optional[float] = None
    while len(front) < max_designs:
        design = state.designs.get(cost)
        if design is None:
            match = [c for c in state.designs if abs(c - cost) <= _tol(c, cost)]
            design = state.designs[match[0]] if match else None
        if design is None:
            break
        front.append(design)
        caps.append(cap_used)
        cap = cost - cost_step
        below = [c for c in state.points if c <= cap + _tol(cap, c)]
        if not below or cap < 0:
            break
        cost = max(below)
        cap_used = cap
    return ParetoFront(front, caps=caps, stats=sweep_stats)
