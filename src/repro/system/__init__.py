"""System model: processors, technology libraries, interconnects, architectures."""

from repro.system.architecture import Architecture, Link
from repro.system.examples import example1_library, example2_library
from repro.system.generators import random_library, speed_graded_library
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorInstance, ProcessorType, instance_suffix

__all__ = [
    "Architecture",
    "Link",
    "random_library",
    "speed_graded_library",
    "example1_library",
    "example2_library",
    "InterconnectStyle",
    "TechnologyLibrary",
    "ProcessorInstance",
    "ProcessorType",
    "instance_suffix",
]
