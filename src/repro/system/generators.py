"""Random technology-library generators.

Used by property tests, the scaling benchmarks, and anyone exploring how
synthesis behaves across hardware spaces.  All generators are seeded and
deterministic, and always produce libraries that *cover* the given task
graph (at least one capable type per subtask).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import SystemModelError
from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorType
from repro.taskgraph.graph import TaskGraph


def random_library(
    graph: TaskGraph,
    seed: int = 0,
    num_types: int = 3,
    instances_per_type: int = 2,
    cost_range: Sequence[float] = (2, 9),
    time_range: Sequence[int] = (1, 5),
    capability_probability: float = 0.8,
    remote_delay_choices: Sequence[float] = (0.5, 1.0),
    local_delay_choices: Sequence[float] = (0.0,),
    link_cost: float = 1.0,
) -> TechnologyLibrary:
    """A random heterogeneous library covering ``graph``.

    The first type is always fully capable (guaranteeing coverage); later
    types drop each subtask with probability ``1 - capability_probability``
    (Type-I heterogeneity) and draw independent speeds (Type-II).

    Args:
        graph: Task graph that must be coverable.
        seed: RNG seed; equal seeds give identical libraries.
        num_types: Number of processor types (>= 1).
        instances_per_type: Pool copies of each type.
        cost_range: ``(low, high)`` integer-ish cost range.
        time_range: ``(low, high)`` integer execution-time range.
        capability_probability: Chance a non-first type keeps a subtask.
        remote_delay_choices: ``D_CR`` candidates.
        local_delay_choices: ``D_CL`` candidates.
        link_cost: ``C_L``.
    """
    if num_types < 1:
        raise SystemModelError("need at least one processor type")
    rng = random.Random(seed)
    tasks = graph.subtask_names
    types = []
    for index in range(num_types):
        times = {}
        for task in tasks:
            if index == 0 or rng.random() < capability_probability:
                times[task] = rng.randint(int(time_range[0]), int(time_range[1]))
        if not times:  # pathological draw: keep one capability
            times[rng.choice(list(tasks))] = rng.randint(
                int(time_range[0]), int(time_range[1])
            )
        cost = rng.randint(int(cost_range[0]), int(cost_range[1]))
        types.append(ProcessorType(f"p{index + 1}", cost, times))
    library = TechnologyLibrary(
        types=tuple(types),
        instances_per_type=instances_per_type,
        link_cost=link_cost,
        local_delay=rng.choice(list(local_delay_choices)),
        remote_delay=rng.choice(list(remote_delay_choices)),
    )
    library.check_covers(graph)
    return library


def speed_graded_library(
    graph: TaskGraph,
    grades: Sequence[Sequence[float]] = ((1.0, 8.0), (2.0, 4.0), (4.0, 2.0)),
    instances_per_type: int = 2,
    remote_delay: float = 1.0,
    link_cost: float = 1.0,
) -> TechnologyLibrary:
    """A pure Type-II (cost-speed) library: every type runs everything.

    Args:
        graph: Task graph to cover.
        grades: ``(execution time per subtask, cost)`` pairs, fastest first.
    """
    types = tuple(
        ProcessorType(
            f"g{index + 1}",
            cost,
            {task: time for task in graph.subtask_names},
        )
        for index, (time, cost) in enumerate(grades)
    )
    return TechnologyLibrary(
        types=types,
        instances_per_type=instances_per_type,
        link_cost=link_cost,
        remote_delay=remote_delay,
    )
