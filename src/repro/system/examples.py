"""The paper's processor characteristic tables (Tables I and III)."""

from __future__ import annotations

from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorType


def example1_library(instances_per_type: object = 2) -> TechnologyLibrary:
    """Table I — Example 1 processor characteristics.

    ===========  ====  ====  ====  ====  ====
    Processor    Cost   S1    S2    S3    S4
    ===========  ====  ====  ====  ====  ====
    p1            4      1     1    12     3
    p2            5      3     1     2     1
    p3            2      -     3     1     -
    ===========  ====  ====  ====  ====  ====

    plus ``D_CL = 0``, ``D_CR = 1``, ``C_L = 1`` (§4.1).  The candidate
    pool defaults to two copies of each type — Experiment 2's designs buy
    two ``p1`` instances, so one copy is not enough.
    """
    p1 = ProcessorType("p1", cost=4, exec_times={"S1": 1, "S2": 1, "S3": 12, "S4": 3})
    p2 = ProcessorType("p2", cost=5, exec_times={"S1": 3, "S2": 1, "S3": 2, "S4": 1})
    p3 = ProcessorType("p3", cost=2, exec_times={"S2": 3, "S3": 1})
    return TechnologyLibrary(
        types=(p1, p2, p3),
        instances_per_type=instances_per_type,
        link_cost=1.0,
        local_delay=0.0,
        remote_delay=1.0,
    )


def example2_library(instances_per_type: object = 2) -> TechnologyLibrary:
    """Table III — Example 2 processor characteristics.

    ===========  ====  ====  ====  ====  ====  ====  ====  ====  ====  ====
    Processor    Cost   S1    S2    S3    S4    S5    S6    S7    S8    S9
    ===========  ====  ====  ====  ====  ====  ====  ====  ====  ====  ====
    p1            4      2     2     1     1     1     1     3     -     1
    p2            5      3     1     1     3     1     2     1     2     1
    p3            2      1     1     2     -     3     1     4     1     3
    ===========  ====  ====  ====  ====  ====  ====  ====  ====  ====  ====

    (The ``+`` printed for (p3, S4) in the paper is read as ``-``:
    every reported design keeps S4 off p3.)  ``D_CL = 0``, ``D_CR = 1``,
    and for point-to-point experiments ``C_L = 1``.
    """
    p1 = ProcessorType(
        "p1",
        cost=4,
        exec_times={"S1": 2, "S2": 2, "S3": 1, "S4": 1, "S5": 1, "S6": 1, "S7": 3, "S9": 1},
    )
    p2 = ProcessorType(
        "p2",
        cost=5,
        exec_times={
            "S1": 3, "S2": 1, "S3": 1, "S4": 3, "S5": 1, "S6": 2, "S7": 1, "S8": 2, "S9": 1,
        },
    )
    p3 = ProcessorType(
        "p3",
        cost=2,
        exec_times={"S1": 1, "S2": 1, "S3": 2, "S5": 3, "S6": 1, "S7": 4, "S8": 1, "S9": 3},
    )
    return TechnologyLibrary(
        types=(p1, p2, p3),
        instances_per_type=instances_per_type,
        link_cost=1.0,
        local_delay=0.0,
        remote_delay=1.0,
    )
