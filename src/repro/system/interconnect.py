"""Interconnection styles.

The paper demonstrates point-to-point synthesis in §3/§4.3.1, bus-style
synthesis in §4.3.2, and names ring interconnection as the model under
development in §5; all three are implemented by :mod:`repro.core`.
"""

from __future__ import annotations

import enum


class InterconnectStyle(enum.Enum):
    """How processors may be wired together.

    * ``POINT_TO_POINT`` — a dedicated unidirectional link (cost ``C_L``)
      must exist from ``p_d1`` to ``p_d2`` for any remote transfer between
      them; each link is a separate exclusively-shared resource.
    * ``BUS`` — one shared medium connects every processor; all remote
      transfers contend for the single bus.  Following §4.3.2, the system
      cost is dominated by the processors (the bus itself contributes a
      fixed cost, 0 by default).
    * ``RING`` — processors sit on a directed ring; a remote transfer
      occupies every hop it traverses for its whole duration (§5 extension).
    """

    POINT_TO_POINT = "point_to_point"
    BUS = "bus"
    RING = "ring"

    @property
    def uses_links(self) -> bool:
        """True when per-pair link-creation variables/costs exist."""
        return self is InterconnectStyle.POINT_TO_POINT

    @property
    def is_shared_medium(self) -> bool:
        """True when all remote transfers contend for one resource."""
        return self is InterconnectStyle.BUS
