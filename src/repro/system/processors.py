"""Processor types and instances.

The paper's system model (§3.2) draws processors from a pool ``P`` of
candidate instances.  A :class:`ProcessorType` captures the cost and the
per-subtask execution-time table ``D_PS`` (with *incapable* entries — the
``-`` marks in Tables I and III — expressing Type-I heterogeneity, and
differing speeds expressing Type-II heterogeneity).  A
:class:`ProcessorInstance` is one purchasable copy of a type; the paper
names instances ``p1a``, ``p1b``, ... and we follow that convention.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import SystemModelError


@dataclass(frozen=True)
class ProcessorType:
    """A purchasable processor model.

    Attributes:
        name: Type name (``p1``, ``p2``, ... in the paper).
        cost: Purchase cost ``C_d`` of one instance.
        exec_times: ``subtask name -> execution time`` (``D_PS``).  Subtasks
            absent from the mapping cannot run on this type (Type-I
            heterogeneity).
        memory_capacity: Local-memory capacity available to subtasks mapped
            here (``None`` = unlimited).  Only enforced when the §5 memory
            extension is enabled in the formulation.
    """

    name: str
    cost: float
    exec_times: Mapping[str, float] = field(default_factory=dict)
    memory_capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise SystemModelError(f"processor type {self.name}: negative cost")
        if self.memory_capacity is not None and self.memory_capacity < 0:
            raise SystemModelError(
                f"processor type {self.name}: negative memory capacity"
            )
        for task, duration in self.exec_times.items():
            if duration < 0:
                raise SystemModelError(
                    f"processor type {self.name}: negative execution time for {task}"
                )
        # Freeze the mapping so types are safely hashable/shareable.
        object.__setattr__(self, "exec_times", dict(self.exec_times))

    def can_execute(self, task: str) -> bool:
        """True when this type is functionally capable of ``task``."""
        return task in self.exec_times

    def execution_time(self, task: str) -> float:
        """``D_PS(type, task)``.

        Raises:
            SystemModelError: If the type cannot execute ``task``.
        """
        try:
            return self.exec_times[task]
        except KeyError:
            raise SystemModelError(
                f"processor type {self.name} cannot execute subtask {task}"
            ) from None

    def scaled(self, factor: float) -> "ProcessorType":
        """A copy with all execution times multiplied by ``factor``.

        Used by the paper's Experiment 2 ("increase the size of each of the
        subtasks"), which scales every ``D_PS`` entry uniformly.
        """
        return ProcessorType(
            self.name,
            self.cost,
            {task: duration * factor for task, duration in self.exec_times.items()},
            memory_capacity=self.memory_capacity,
        )

    def __hash__(self) -> int:
        return hash(
            (self.name, self.cost, self.memory_capacity,
             tuple(sorted(self.exec_times.items())))
        )


def instance_suffix(ordinal: int) -> str:
    """The paper's instance suffix: 0 -> ``a``, 1 -> ``b``, ..., 26 -> ``aa``."""
    if ordinal < 0:
        raise SystemModelError("instance ordinal must be nonnegative")
    letters = string.ascii_lowercase
    suffix = ""
    ordinal += 1  # bijective base-26
    while ordinal:
        ordinal, remainder = divmod(ordinal - 1, 26)
        suffix = letters[remainder] + suffix
    return suffix


@dataclass(frozen=True)
class ProcessorInstance:
    """One purchasable copy of a processor type.

    Attributes:
        ptype: The processor type.
        ordinal: 0-based copy number within the type.
    """

    ptype: ProcessorType
    ordinal: int

    @property
    def name(self) -> str:
        """Paper-style instance name, e.g. ``p1a`` or ``p1b``."""
        return f"{self.ptype.name}{instance_suffix(self.ordinal)}"

    @property
    def cost(self) -> float:
        return self.ptype.cost

    def can_execute(self, task: str) -> bool:
        """True when this instance's type can execute ``task``."""
        return self.ptype.can_execute(task)

    def execution_time(self, task: str) -> float:
        """``D_PS`` of this instance's type for ``task``."""
        return self.ptype.execution_time(task)

    def __repr__(self) -> str:
        return f"ProcessorInstance({self.name})"
