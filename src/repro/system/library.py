"""The technology library: everything the designer supplies about hardware.

A :class:`TechnologyLibrary` bundles the processor types, how many copies
of each may be bought (the candidate pool ``P`` of §3.2), the link cost
``C_L``, and the local/remote per-unit transfer delays ``D_CL``/``D_CR``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SystemModelError
from repro.system.processors import ProcessorInstance, ProcessorType
from repro.taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class TechnologyLibrary:
    """Hardware characteristics available to the synthesizer.

    Attributes:
        types: Candidate processor types.
        instances_per_type: Copies of each type in the candidate pool.  Two
            suffices for every experiment in the paper (no reported design
            uses more than two copies of any type); raise it for wider
            graphs.  A mapping may give per-type counts.
        link_cost: ``C_L`` — cost of creating one point-to-point link.
        local_delay: ``D_CL`` — time per unit volume for an intra-processor
            transfer (0 in all paper experiments).
        remote_delay: ``D_CR`` — time per unit volume over a link/bus.
        bus_cost: Fixed cost of the shared bus (bus style only; §4.3.2's
            cost tables imply 0).
    """

    types: Tuple[ProcessorType, ...]
    instances_per_type: object = 2
    link_cost: float = 1.0
    local_delay: float = 0.0
    remote_delay: float = 1.0
    bus_cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.types:
            raise SystemModelError("a technology library needs at least one processor type")
        names = [ptype.name for ptype in self.types]
        if len(set(names)) != len(names):
            raise SystemModelError(f"duplicate processor type names: {names}")
        for value, label in (
            (self.link_cost, "link_cost"),
            (self.local_delay, "local_delay"),
            (self.remote_delay, "remote_delay"),
            (self.bus_cost, "bus_cost"),
        ):
            if value < 0:
                raise SystemModelError(f"{label} must be nonnegative")
        object.__setattr__(self, "types", tuple(self.types))

    # -- pool construction ---------------------------------------------------
    def copies_of(self, ptype: ProcessorType) -> int:
        """How many instances of ``ptype`` are in the candidate pool."""
        if isinstance(self.instances_per_type, Mapping):
            count = int(self.instances_per_type.get(ptype.name, 1))
        else:
            count = int(self.instances_per_type)
        if count < 1:
            raise SystemModelError(
                f"instances_per_type for {ptype.name} must be >= 1, got {count}"
            )
        return count

    def instances(self) -> List[ProcessorInstance]:
        """The full candidate pool ``P``, grouped by type, ordered by ordinal."""
        pool: List[ProcessorInstance] = []
        for ptype in self.types:
            for ordinal in range(self.copies_of(ptype)):
                pool.append(ProcessorInstance(ptype, ordinal))
        return pool

    def type_by_name(self, name: str) -> ProcessorType:
        """The processor type named ``name``."""
        for ptype in self.types:
            if ptype.name == name:
                return ptype
        raise SystemModelError(f"no processor type named {name!r}")

    # -- capability queries ---------------------------------------------------
    def capable_types(self, task: str) -> List[ProcessorType]:
        """Types able to execute ``task`` (the type-level view of ``P_a``)."""
        return [ptype for ptype in self.types if ptype.can_execute(task)]

    def capable_instances(self, task: str) -> List[ProcessorInstance]:
        """Instances able to execute ``task`` (the paper's set ``P_a``)."""
        return [inst for inst in self.instances() if inst.can_execute(task)]

    def check_covers(self, graph: TaskGraph) -> None:
        """Verify every subtask has at least one capable processor.

        Raises:
            SystemModelError: Naming the first uncoverable subtask.
        """
        for subtask in graph.subtasks:
            if not self.capable_types(subtask.name):
                raise SystemModelError(
                    f"no processor type can execute subtask {subtask.name}"
                )

    # -- transforms (paper tradeoff studies) -----------------------------------
    def scaled_execution(self, factor: float) -> "TechnologyLibrary":
        """Experiment 2: all ``D_PS`` entries multiplied by ``factor``."""
        if factor <= 0:
            raise SystemModelError("execution-time scale factor must be positive")
        return replace(self, types=tuple(ptype.scaled(factor) for ptype in self.types))

    def with_instances(self, instances_per_type: object) -> "TechnologyLibrary":
        """A copy with a different candidate-pool size."""
        return replace(self, instances_per_type=instances_per_type)

    def auto_sized(self, graph: TaskGraph, max_copies: int = 4) -> "TechnologyLibrary":
        """A copy whose pool is sized from the application.

        A type never needs more copies than the number of subtasks it can
        execute (extra copies are pure search-space symmetry), so the pool
        becomes ``min(capable-subtask count, max_copies)`` per type.  A
        valid, optimum-preserving cap would be the maximum *antichain* of
        capable subtasks; the simpler count is an upper bound on that.

        Args:
            graph: Application the pool will serve.
            max_copies: Hard per-type ceiling.
        """
        if max_copies < 1:
            raise SystemModelError("max_copies must be at least 1")
        sizes = {}
        for ptype in self.types:
            capable = sum(
                1 for subtask in graph.subtasks if ptype.can_execute(subtask.name)
            )
            sizes[ptype.name] = max(1, min(capable, max_copies))
        return replace(self, instances_per_type=sizes)

    def transfer_delay(self, volume: float, remote: bool) -> float:
        """Transfer duration for ``volume`` units (remote or local)."""
        rate = self.remote_delay if remote else self.local_delay
        return rate * volume

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible document (the CLI problem file's ``library`` block).

        The inverse of :meth:`from_dict`; also the canonical form the
        service layer fingerprints, so the schema is deliberately plain:
        only JSON scalars, lists, and string-keyed mappings.
        """
        return {
            "types": [
                {
                    "name": ptype.name,
                    "cost": ptype.cost,
                    "exec_times": dict(ptype.exec_times),
                    **(
                        {"memory_capacity": ptype.memory_capacity}
                        if ptype.memory_capacity is not None
                        else {}
                    ),
                }
                for ptype in self.types
            ],
            "instances_per_type": (
                dict(self.instances_per_type)
                if isinstance(self.instances_per_type, Mapping)
                else self.instances_per_type
            ),
            "link_cost": self.link_cost,
            "local_delay": self.local_delay,
            "remote_delay": self.remote_delay,
            "bus_cost": self.bus_cost,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TechnologyLibrary":
        """Build a library from a :meth:`to_dict`-shaped document.

        This is the parser behind the CLI problem file's ``library`` block
        and the HTTP API's inline problems.

        Raises:
            SystemModelError: On missing/malformed ``types``.
        """
        try:
            types = tuple(
                ProcessorType(
                    entry["name"],
                    entry["cost"],
                    entry.get("exec_times", {}),
                    memory_capacity=entry.get("memory_capacity"),
                )
                for entry in data["types"]
            )
        except (KeyError, TypeError) as exc:
            raise SystemModelError(f"malformed library document: {exc}") from exc
        return cls(
            types=types,
            instances_per_type=data.get("instances_per_type", 2),
            link_cost=float(data.get("link_cost", 1.0)),
            local_delay=float(data.get("local_delay", 0.0)),
            remote_delay=float(data.get("remote_delay", 1.0)),
            bus_cost=float(data.get("bus_cost", 0.0)),
        )
