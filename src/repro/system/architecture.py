"""Synthesized architectures: the structural half of a design.

An :class:`Architecture` records which processor instances were bought and
which communication resources (links / bus / ring) exist between them —
the paper's Figure 2 box-and-arrow picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import SystemModelError
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorInstance


@dataclass(frozen=True)
class Link:
    """A unidirectional point-to-point communication link.

    Attributes:
        source: Sending processor instance name.
        dest: Receiving processor instance name.
    """

    source: str
    dest: str

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise SystemModelError(f"link from {self.source} to itself is meaningless")

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``l[p1a,p2a]`` for ``l_{1a,2a}``."""
        return f"l[{self.source},{self.dest}]"


@dataclass
class Architecture:
    """The structure of a synthesized multiprocessor system.

    Attributes:
        processors: Bought processor instances (the ``β_d = 1`` set).
        links: Point-to-point links (the ``χ_{d1,d2} = 1`` set).  For ring
            style these are the built nearest-neighbor ring segments; empty
            for bus style.
        style: Interconnect style the system was synthesized for.
        library: The technology library it was drawn from (for costing).
        ring_order: For ring style, the cyclic order of ``processors``.
    """

    processors: List[ProcessorInstance]
    links: List[Link] = field(default_factory=list)
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT
    library: Optional[TechnologyLibrary] = None
    ring_order: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [inst.name for inst in self.processors]
        if len(set(names)) != len(names):
            raise SystemModelError(f"duplicate processor instances in architecture: {names}")
        known = set(names)
        for link in self.links:
            if link.source not in known or link.dest not in known:
                raise SystemModelError(f"link {link.label} references unknown processors")
        if self.style is InterconnectStyle.BUS and self.links:
            raise SystemModelError("bus architectures do not enumerate links")
        if self.style is InterconnectStyle.RING and self.ring_order:
            if set(self.ring_order) != known:
                raise SystemModelError("ring_order must be a permutation of the processors")

    # -- queries ------------------------------------------------------------
    def processor(self, name: str) -> ProcessorInstance:
        """The bought instance named ``name``."""
        for inst in self.processors:
            if inst.name == name:
                return inst
        raise SystemModelError(f"no processor named {name!r} in this architecture")

    def processor_names(self) -> List[str]:
        """Names of the bought instances, in purchase order."""
        return [inst.name for inst in self.processors]

    def has_link(self, source: str, dest: str) -> bool:
        """Can ``source`` send to ``dest`` directly?

        Always true between distinct bought processors for the bus style
        (the medium is shared); point-to-point and ring require an explicit
        link/segment.
        """
        if source == dest:
            return True  # local transfers never need a link
        known = set(self.processor_names())
        if source not in known or dest not in known:
            return False
        if self.style is InterconnectStyle.BUS:
            return True
        return any(l.source == source and l.dest == dest for l in self.links)

    def ring_hops(self, source: str, dest: str) -> Tuple[Tuple[str, str], ...]:
        """Directed ring segments a transfer from ``source`` to ``dest`` occupies."""
        if self.style is not InterconnectStyle.RING:
            raise SystemModelError("ring_hops is only defined for ring architectures")
        order = list(self.ring_order)
        position = order.index(source)
        hops: List[Tuple[str, str]] = []
        while order[position] != dest:
            nxt = (position + 1) % len(order)
            hops.append((order[position], order[nxt]))
            position = nxt
        return tuple(hops)

    # -- cost ------------------------------------------------------------
    def processor_cost(self) -> float:
        """Sum of ``C_d`` over bought processors."""
        return sum(inst.cost for inst in self.processors)

    def communication_cost(self) -> float:
        """Link cost ``C_L * |links|`` (p2p and ring segments) or bus cost."""
        if self.library is None:
            raise SystemModelError("architecture has no library to price links")
        if self.style is InterconnectStyle.BUS:
            return self.library.bus_cost
        return self.library.link_cost * len(self.links)

    def total_cost(self) -> float:
        """The paper's total-system-cost objective: processors + communication."""
        return self.processor_cost() + self.communication_cost()

    def summary(self) -> str:
        """One-line description, e.g. ``{p1a, p2a} + links {l[p1a,p2a]}``."""
        procs = ", ".join(sorted(self.processor_names()))
        if self.style is InterconnectStyle.BUS:
            return f"processors {{{procs}}}; shared bus"
        links = ", ".join(sorted(link.label for link in self.links)) or "none"
        if self.style is InterconnectStyle.RING:
            return f"processors {{{procs}}}; ring segments {{{links}}}"
        return f"processors {{{procs}}}; links {{{links}}}"
