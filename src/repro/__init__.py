"""SOS — Synthesis of Application-Specific Heterogeneous Multiprocessor Systems.

A complete, from-scratch reproduction of Prakash & Parker (ISCA 1992):
MILP co-synthesis of the processor set, interconnect, subtask mapping, and
static schedule of an application-specific heterogeneous multiprocessor.

Quickstart::

    import repro

    design = repro.synthesize(repro.example1(), repro.example1_library())
    print(design.describe())
    print(design.gantt())

    synth = repro.Synthesizer(repro.example1(), repro.example1_library())
    front = synth.pareto_sweep()           # every non-inferior system

``repro.synthesize`` is the one-call entrypoint; ``repro.Synthesizer``
is the stateful driver for sweeps and repeated solves.  The stable
public surface is documented in ``docs/api.md``; structured solve
tracing lives in :mod:`repro.obs` (see ``docs/observability.md``).
"""

from repro.core import (
    DesignerConstraints,
    FormulationOptions,
    Objective,
    SosModelBuilder,
    build_sos_model,
)
from repro.errors import (
    InfeasibleError,
    ReproError,
    SolverError,
    SynthesisError,
    TaskGraphError,
    UnknownSolverError,
    ValidationError,
)
from repro.synthesis import Design, ParetoFront, Synthesizer, synthesize
from repro.system import (
    Architecture,
    InterconnectStyle,
    Link,
    ProcessorInstance,
    ProcessorType,
    TechnologyLibrary,
    example1_library,
    example2_library,
)
from repro.taskgraph import TaskGraph, example1, example2

__version__ = "1.0.0"

__all__ = [
    "DesignerConstraints",
    "FormulationOptions",
    "Objective",
    "SosModelBuilder",
    "build_sos_model",
    "InfeasibleError",
    "ReproError",
    "SolverError",
    "SynthesisError",
    "TaskGraphError",
    "UnknownSolverError",
    "ValidationError",
    "Design",
    "ParetoFront",
    "Synthesizer",
    "synthesize",
    "Architecture",
    "InterconnectStyle",
    "Link",
    "ProcessorInstance",
    "ProcessorType",
    "TechnologyLibrary",
    "example1_library",
    "example2_library",
    "TaskGraph",
    "example1",
    "example2",
    "__version__",
]
