"""SOS — Synthesis of Application-Specific Heterogeneous Multiprocessor Systems.

A complete, from-scratch reproduction of Prakash & Parker (ISCA 1992):
MILP co-synthesis of the processor set, interconnect, subtask mapping, and
static schedule of an application-specific heterogeneous multiprocessor.

Quickstart::

    from repro import Synthesizer, example1, example1_library

    synth = Synthesizer(example1(), example1_library())
    design = synth.synthesize()            # fastest system at any cost
    print(design.describe())
    print(design.gantt())
    front = synth.pareto_sweep()           # every non-inferior system
"""

from repro.core import (
    DesignerConstraints,
    FormulationOptions,
    Objective,
    SosModelBuilder,
    build_sos_model,
)
from repro.errors import (
    InfeasibleError,
    ReproError,
    SolverError,
    SynthesisError,
    TaskGraphError,
    ValidationError,
)
from repro.synthesis import Design, Synthesizer
from repro.system import (
    Architecture,
    InterconnectStyle,
    Link,
    ProcessorInstance,
    ProcessorType,
    TechnologyLibrary,
    example1_library,
    example2_library,
)
from repro.taskgraph import TaskGraph, example1, example2

__version__ = "1.0.0"

__all__ = [
    "DesignerConstraints",
    "FormulationOptions",
    "Objective",
    "SosModelBuilder",
    "build_sos_model",
    "InfeasibleError",
    "ReproError",
    "SolverError",
    "SynthesisError",
    "TaskGraphError",
    "ValidationError",
    "Design",
    "Synthesizer",
    "Architecture",
    "InterconnectStyle",
    "Link",
    "ProcessorInstance",
    "ProcessorType",
    "TechnologyLibrary",
    "example1_library",
    "example2_library",
    "TaskGraph",
    "example1",
    "example2",
    "__version__",
]
