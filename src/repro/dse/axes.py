"""Declarative technology axes and the grid they span.

An :class:`Axis` is a named list of labeled library transforms; a
:class:`SpaceSpec` combines several axes into the cartesian grid of
technology-library variants a study sweeps.  Every grid point gets a
stable, human-readable ``point_id`` (``"price=0.5|remote=2"``) built
from the axis labels — stable across runs and processes, so manifests
and reports can name points durably, while the *content* of each
variant (the transformed library, the interconnect style) is what the
service-tier fingerprint actually digests.

The shipped axis constructors cover the lumos-style questions:

* :func:`scale_prices` — multiply every processor type's cost;
* :func:`scale_speeds` — multiply every ``D_PS`` execution time
  (the paper's Experiment-2 knob, as an axis);
* :func:`remote_delays` — set ``D_CR``, the per-unit remote transfer
  delay;
* :func:`link_costs` — set ``C_L``, the point-to-point link cost;
* :func:`interconnect_styles` — synthesize under different interconnect
  styles (the bus-vs-link toggle of §4.3);
* :func:`subset_types` — restrict the library to named processor types
  (which library entries actually earn their place?).

Axes compose freely; custom axes are one :class:`AxisValue` per labeled
transform over a :class:`PointConfig`.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Sequence, Tuple, Union

from repro.errors import SystemModelError
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorType

_STYLES = {
    "p2p": InterconnectStyle.POINT_TO_POINT,
    "point_to_point": InterconnectStyle.POINT_TO_POINT,
    "bus": InterconnectStyle.BUS,
    "ring": InterconnectStyle.RING,
}

#: Short, stable display labels per style (used in point ids).
_STYLE_LABELS = {
    InterconnectStyle.POINT_TO_POINT: "p2p",
    InterconnectStyle.BUS: "bus",
    InterconnectStyle.RING: "ring",
}


@dataclass(frozen=True)
class PointConfig:
    """What one grid point synthesizes against: a library and a style."""

    library: TechnologyLibrary
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT


@dataclass(frozen=True)
class AxisValue:
    """One labeled setting of an axis.

    Attributes:
        label: Stable display label (becomes part of the point id; must
            not contain ``"|"`` or ``"="``).
        apply: Pure transform taking a :class:`PointConfig` to the
            variant this value describes.
    """

    label: str
    apply: Callable[[PointConfig], PointConfig]

    def __post_init__(self) -> None:
        if not self.label or any(ch in self.label for ch in "|=,"):
            raise SystemModelError(
                f"axis value label {self.label!r} must be nonempty and "
                f"free of '|', '=' and ','"
            )


@dataclass(frozen=True)
class Axis:
    """A named technology axis: an ordered list of labeled variants."""

    name: str
    values: Tuple[AxisValue, ...]

    def __post_init__(self) -> None:
        if not self.name or any(ch in self.name for ch in "|=,"):
            raise SystemModelError(
                f"axis name {self.name!r} must be nonempty and free of "
                f"'|', '=' and ','"
            )
        if not self.values:
            raise SystemModelError(f"axis {self.name!r} needs at least one value")
        labels = [value.label for value in self.values]
        if len(set(labels)) != len(labels):
            raise SystemModelError(
                f"axis {self.name!r} has duplicate value labels: {labels}"
            )
        object.__setattr__(self, "values", tuple(self.values))

    def __len__(self) -> int:
        return len(self.values)


def _number_label(value: float) -> str:
    """Stable ``%g`` label for a numeric axis value."""
    return f"{float(value):g}"


# -- shipped axis constructors -----------------------------------------------
def scale_prices(*factors: float, name: str = "price") -> Axis:
    """Multiply every processor type's cost by each factor.

    Models a technology library whose processors get cheaper (factor
    < 1) or dearer (> 1) while speeds stay put.  Link/bus costs are
    untouched — sweep those with :func:`link_costs`.
    """
    values = []
    for factor in factors:
        if factor <= 0:
            raise SystemModelError("price scale factors must be positive")

        def transform(config: PointConfig, factor: float = float(factor)) -> PointConfig:
            scaled = tuple(
                ProcessorType(
                    ptype.name, ptype.cost * factor, ptype.exec_times,
                    memory_capacity=ptype.memory_capacity,
                )
                for ptype in config.library.types
            )
            return dataclasses.replace(
                config, library=dataclasses.replace(config.library, types=scaled)
            )

        values.append(AxisValue(_number_label(factor), transform))
    return Axis(name, tuple(values))


def scale_speeds(*factors: float, name: str = "speed") -> Axis:
    """Multiply every ``D_PS`` execution time by each factor.

    Factor < 1 means faster silicon; > 1 is the paper's Experiment 2
    ("increase the size of each of the subtasks") as a first-class axis.
    """
    values = []
    for factor in factors:
        if factor <= 0:
            raise SystemModelError("speed scale factors must be positive")

        def transform(config: PointConfig, factor: float = float(factor)) -> PointConfig:
            return dataclasses.replace(
                config, library=config.library.scaled_execution(factor)
            )

        values.append(AxisValue(_number_label(factor), transform))
    return Axis(name, tuple(values))


def remote_delays(*delays: float, name: str = "remote") -> Axis:
    """Set ``D_CR`` (per-unit remote transfer delay) to each value."""
    values = []
    for delay in delays:
        if delay < 0:
            raise SystemModelError("remote delays must be nonnegative")

        def transform(config: PointConfig, delay: float = float(delay)) -> PointConfig:
            return dataclasses.replace(
                config,
                library=dataclasses.replace(config.library, remote_delay=delay),
            )

        values.append(AxisValue(_number_label(delay), transform))
    return Axis(name, tuple(values))


def link_costs(*costs: float, name: str = "link") -> Axis:
    """Set ``C_L`` (point-to-point link cost) to each value."""
    values = []
    for cost in costs:
        if cost < 0:
            raise SystemModelError("link costs must be nonnegative")

        def transform(config: PointConfig, cost: float = float(cost)) -> PointConfig:
            return dataclasses.replace(
                config, library=dataclasses.replace(config.library, link_cost=cost)
            )

        values.append(AxisValue(_number_label(cost), transform))
    return Axis(name, tuple(values))


def interconnect_styles(
    *styles: Union[str, InterconnectStyle], name: str = "style"
) -> Axis:
    """Synthesize each grid point under these interconnect styles.

    The bus-vs-link toggle of §4.3 as an axis: the library is untouched,
    the formulation style changes (and with it which cost terms exist).
    """
    values = []
    for style in styles:
        if isinstance(style, str):
            try:
                style = _STYLES[style]
            except KeyError:
                raise SystemModelError(
                    f"unknown interconnect style {style!r} "
                    f"(use {', '.join(sorted(_STYLES))})"
                ) from None

        def transform(
            config: PointConfig, style: InterconnectStyle = style
        ) -> PointConfig:
            return dataclasses.replace(config, style=style)

        values.append(AxisValue(_STYLE_LABELS[style], transform))
    return Axis(name, tuple(values))


def subset_types(*groups: Sequence[str], name: str = "types") -> Axis:
    """Restrict the library to named processor types, one group per value.

    A group is a sequence of type names (labels render as
    ``"p1+p3"``).  Unknown names raise at grid-expansion time; a subset
    that no longer *covers* the application simply synthesizes as an
    infeasible grid point.
    """
    values = []
    for group in groups:
        names = tuple(group.split("+")) if isinstance(group, str) else tuple(group)
        if not names:
            raise SystemModelError("a type subset needs at least one type name")

        def transform(
            config: PointConfig, names: Tuple[str, ...] = names
        ) -> PointConfig:
            known = {ptype.name for ptype in config.library.types}
            missing = [n for n in names if n not in known]
            if missing:
                raise SystemModelError(
                    f"subset names unknown processor types: {missing} "
                    f"(library has {sorted(known)})"
                )
            kept = tuple(
                ptype for ptype in config.library.types if ptype.name in names
            )
            return dataclasses.replace(
                config, library=dataclasses.replace(config.library, types=kept)
            )

        values.append(AxisValue("+".join(names), transform))
    return Axis(name, tuple(values))


# -- the grid ------------------------------------------------------------------
@dataclass(frozen=True)
class GridPoint:
    """One expanded grid point: id, coordinates, and the variant to solve.

    Attributes:
        point_id: Stable label, ``"axis=label"`` pairs joined by ``"|"``
            in axis order.
        coords: ``axis name -> value label`` (insertion-ordered to match
            the spec's axis order).
        library: The transformed technology library.
        style: The interconnect style to synthesize under.
    """

    point_id: str
    coords: Dict[str, str]
    library: TechnologyLibrary
    style: InterconnectStyle


class SpaceSpec:
    """The cartesian product of technology axes over a base library.

    Args:
        library: Base :class:`TechnologyLibrary` every axis transforms.
        axes: Axes, outermost first; the grid iterates the last axis
            fastest (row-major), and transforms apply in axis order.
        style: Base interconnect style (an :func:`interconnect_styles`
            axis overrides it).

    Example:
        >>> from repro.system.examples import example1_library
        >>> spec = SpaceSpec(example1_library(),
        ...                  [scale_prices(0.5, 1.0), remote_delays(1.0, 2.0)])
        >>> len(spec)
        4
        >>> [p.point_id for p in spec.points()][:2]
        ['price=0.5|remote=1', 'price=0.5|remote=2']
    """

    def __init__(
        self,
        library: TechnologyLibrary,
        axes: Sequence[Axis],
        style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT,
    ) -> None:
        if not axes:
            raise SystemModelError("a design space needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise SystemModelError(f"duplicate axis names: {names}")
        self.library = library
        self.axes: Tuple[Axis, ...] = tuple(axes)
        self.style = style

    def __len__(self) -> int:
        """Number of grid points (product of axis sizes)."""
        size = 1
        for axis in self.axes:
            size *= len(axis)
        return size

    def axis_names(self) -> Tuple[str, ...]:
        """The axis names, in declaration order."""
        return tuple(axis.name for axis in self.axes)

    def points(self) -> Iterator[GridPoint]:
        """Expand the grid, applying transforms in axis order.

        Yields:
            One :class:`GridPoint` per combination, last axis fastest.

        Raises:
            SystemModelError: When a transform produces an invalid
                library (e.g. a subset naming unknown types).
        """
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            config = PointConfig(self.library, self.style)
            coords: Dict[str, str] = {}
            for axis, value in zip(self.axes, combo):
                config = value.apply(config)
                coords[axis.name] = value.label
            point_id = "|".join(f"{k}={v}" for k, v in coords.items())
            yield GridPoint(point_id, coords, config.library, config.style)
