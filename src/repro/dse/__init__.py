"""Design-space exploration at lumos scale.

The paper synthesizes one application against one technology library.
This package answers the next question — how the cost–performance
frontier *moves* as the library changes — by sweeping declarative
technology axes (processor price/speed scaling, interconnect delay and
cost, bus-vs-link style, library subsets) and synthesizing the full
Pareto front at every grid point:

* :mod:`repro.dse.axes` — composable :class:`Axis` transforms over a
  :class:`~repro.system.library.TechnologyLibrary`, combined by a
  :class:`SpaceSpec` into a labeled grid of library variants;
* :mod:`repro.dse.executor` — :func:`run_study` drives one
  ``pareto_sweep`` per grid point through the service-tier
  :class:`~repro.service.cache.ResultCache`, journaling completed
  points to a JSONL manifest so an interrupted thousand-point study
  resumes without duplicate solves (and a finished study replays as a
  pure warm-cache no-op);
* :mod:`repro.dse.surface` — the :class:`FrontierSurface` result model
  (axis coordinates → :class:`~repro.synthesis.front.ParetoFront`) with
  a JSON round trip and query helpers (``slice``, ``best_cost_at``,
  cross-library dominated-point detection);
* :mod:`repro.dse.report` — frontier-vs-library comparison tables for
  the ``sos dse report`` CLI.

See ``docs/dse.md`` for the full tour.
"""

from repro.dse.axes import (
    Axis,
    AxisValue,
    GridPoint,
    PointConfig,
    SpaceSpec,
    interconnect_styles,
    link_costs,
    remote_delays,
    scale_prices,
    scale_speeds,
    subset_types,
)
from repro.dse.executor import StudyResult, run_study
from repro.dse.report import frontier_comparison, surface_csv, surface_overview
from repro.dse.surface import FrontierSurface, SurfacePoint

__all__ = [
    "Axis",
    "AxisValue",
    "GridPoint",
    "PointConfig",
    "SpaceSpec",
    "scale_prices",
    "scale_speeds",
    "remote_delays",
    "link_costs",
    "interconnect_styles",
    "subset_types",
    "run_study",
    "StudyResult",
    "FrontierSurface",
    "SurfacePoint",
    "surface_overview",
    "frontier_comparison",
    "surface_csv",
]
