"""Frontier-vs-library comparison reporting for DSE studies.

Renders :class:`~repro.dse.surface.FrontierSurface` objects through the
same plain-text table substrate everything else uses
(:mod:`repro.analysis.reporting`), so ``sos dse report`` output sits
next to ``sos sweep`` output visually.

Three views:

* :func:`surface_overview` — one row per grid point: coordinates, front
  size, extreme designs, and a ``dominated`` marker for library
  variants that never earn their place;
* :func:`frontier_comparison` — the frontier-vs-library matrix: for a
  ladder of deadlines, the cheapest system each variant offers (``-``
  when the variant cannot meet the deadline);
* :func:`surface_csv` — the overview as CSV for spreadsheets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table, to_csv
from repro.dse.surface import FrontierSurface

#: Cap the auto-derived deadline ladder so a 64-design front does not
#: explode the comparison matrix; pass explicit deadlines to override.
MAX_AUTO_DEADLINES = 12


def _overview_rows(surface: FrontierSurface) -> tuple:
    """Shared (headers, rows) of the overview table and CSV."""
    dominated = set(surface.dominated_points())
    headers = [*surface.axes, "designs", "min cost", "min makespan",
               "fastest @ cost", "dominated"]
    rows = []
    for point in surface:
        coords = [point.coords.get(axis, "-") for axis in surface.axes]
        if not point.feasible:
            rows.append([*coords, 0, None, None, None, "yes"])
            continue
        fastest = min(point.front, key=lambda d: (d.makespan, d.cost))
        rows.append([
            *coords,
            len(point.front),
            min(design.cost for design in point.front),
            fastest.makespan,
            fastest.cost,
            "yes" if point.point_id in dominated else "",
        ])
    return headers, rows


def surface_overview(surface: FrontierSurface, title: Optional[str] = None) -> str:
    """One row per grid point: coordinates, front shape, dominated flag."""
    headers, rows = _overview_rows(surface)
    if title is None:
        title = (
            f"Frontier surface for {surface.graph_name or 'study'} "
            f"({len(surface)} points)"
        )
    return format_table(headers, rows, title=title)


def surface_csv(surface: FrontierSurface) -> str:
    """The overview table as CSV text."""
    headers, rows = _overview_rows(surface)
    return to_csv(headers, rows)


def default_deadlines(surface: FrontierSurface) -> List[float]:
    """An increasing deadline ladder from the surface's own makespans.

    The union of every front's makespans, deduplicated and capped at
    :data:`MAX_AUTO_DEADLINES` by even subsampling — every rung is a
    deadline at which at least one variant's best answer changes.
    """
    makespans = sorted({
        design.makespan
        for point in surface if point.front is not None
        for design in point.front
    })
    if len(makespans) > MAX_AUTO_DEADLINES:
        step = (len(makespans) - 1) / (MAX_AUTO_DEADLINES - 1)
        makespans = [makespans[round(i * step)] for i in range(MAX_AUTO_DEADLINES)]
    return makespans


def frontier_comparison(
    surface: FrontierSurface,
    deadlines: Optional[Sequence[float]] = None,
    title: Optional[str] = None,
) -> str:
    """The frontier-vs-library matrix: cheapest cost per deadline per point.

    Rows are deadlines (tightest first); one column per grid point
    carries the cheapest cost that variant offers within the deadline,
    ``-`` when it cannot meet it.  The last column names the winning
    variant — the library the money should buy at that deadline.

    Args:
        surface: The study result.
        deadlines: Explicit deadline ladder; derived from the surface's
            own makespans when omitted.
        title: Optional table title.
    """
    if deadlines is None:
        deadlines = default_deadlines(surface)
    headers = ["deadline", *[point.point_id for point in surface], "best"]
    rows = []
    for deadline in deadlines:
        cells: List[object] = [deadline]
        for point in surface:
            design = point.best_cost_at(deadline)
            cells.append(design.cost if design is not None else None)
        winner = surface.best_cost_at(deadline)
        cells.append(winner[0].point_id if winner is not None else None)
        rows.append(cells)
    if title is None:
        title = "Cheapest system per deadline, by library variant"
    return format_table(headers, rows, title=title)
