"""The :class:`FrontierSurface` result model of a DSE study.

A surface maps axis coordinates to Pareto fronts: one
:class:`SurfacePoint` per grid point, each carrying the transformed
library it was synthesized against, the interconnect style, the
service-tier fingerprint of its sweep, and the
:class:`~repro.synthesis.front.ParetoFront` itself (``None`` for grid
points with no feasible system at all).

The JSON round trip (:meth:`FrontierSurface.to_json` /
:meth:`~FrontierSurface.from_json`) embeds each point's *library*
document — libraries differ per point, that is the whole study — but
not the task graph, which is shared and must be supplied on load (the
same contract as :meth:`ParetoFront.from_dict`).

Query helpers answer the questions a study is run for:

* :meth:`FrontierSurface.slice` — the sub-surface at fixed axis values;
* :meth:`FrontierSurface.best_cost_at` — the cheapest design meeting a
  deadline, across every library variant;
* :meth:`FrontierSurface.dominated_points` — variants whose whole
  frontier is dominated by some other variant's frontier (libraries
  that never earn their place at any budget).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.analysis.pareto import dominates
from repro.errors import SynthesisError
from repro.synthesis.design import Design
from repro.synthesis.front import ParetoFront
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary

#: Schema version of the surface document.
SURFACE_VERSION = 1


class SurfacePoint:
    """One grid point of a frontier surface.

    Attributes:
        point_id: Stable grid label (``"price=0.5|remote=2"``).
        coords: ``axis name -> value label``.
        library: The transformed library this point solved against.
        style: Interconnect style of this point.
        fingerprint: Content address of the point's sweep request (the
            key its front lives under in the result cache).
        front: The point's :class:`ParetoFront`, or ``None`` when no
            feasible system exists for this variant.
        from_cache: True when the front was answered by the result
            cache or manifest replay rather than a fresh sweep.
    """

    def __init__(
        self,
        point_id: str,
        coords: Dict[str, str],
        library: TechnologyLibrary,
        style: InterconnectStyle,
        fingerprint: str,
        front: Optional[ParetoFront],
        from_cache: bool = False,
    ) -> None:
        self.point_id = point_id
        self.coords = dict(coords)
        self.library = library
        self.style = style
        self.fingerprint = fingerprint
        self.front = front
        self.from_cache = from_cache

    @property
    def feasible(self) -> bool:
        """True when the variant admits at least one design."""
        return self.front is not None and len(self.front) > 0

    def frontier_points(self) -> List[Tuple[float, float]]:
        """The front as ``(cost, makespan)`` pairs (empty if infeasible)."""
        if self.front is None:
            return []
        return [(design.cost, design.makespan) for design in self.front]

    def best_cost_at(self, deadline: float) -> Optional[Design]:
        """The cheapest design with ``makespan <= deadline``, or ``None``."""
        candidates = [
            design for design in (self.front or [])
            if design.makespan <= deadline + 1e-9
        ]
        return min(candidates, key=lambda d: d.cost) if candidates else None

    def __repr__(self) -> str:
        size = len(self.front) if self.front is not None else 0
        return f"SurfacePoint({self.point_id!r}, {size} designs)"


def _front_dominates(
    winner: List[Tuple[float, float]],
    loser: List[Tuple[float, float]],
    tol: float = 1e-9,
) -> bool:
    """``winner`` dominates ``loser`` as whole frontiers.

    Every point of ``loser`` must be dominated by or equal to some
    ``winner`` point, with at least one strictly dominated — i.e. the
    losing library variant is never the right choice at any budget.
    An empty (infeasible) loser is dominated by any feasible winner.
    """
    if not winner:
        return False
    if not loser:
        return True
    strict = False
    for point in loser:
        matched = False
        for other in winner:
            if dominates(other, point, tol):
                matched = strict = True
                break
            if (abs(other[0] - point[0]) <= tol
                    and abs(other[1] - point[1]) <= tol):
                matched = True
                break
        if not matched:
            return False
    return strict


class FrontierSurface:
    """Axis coordinates → Pareto front, over a whole technology space.

    Iterates over its :class:`SurfacePoint` entries in grid order.

    Attributes:
        axes: Axis names, in declaration order.
        points: The grid points.
        graph_name: Display name of the application the study ran on.
    """

    def __init__(
        self,
        axes: Tuple[str, ...],
        points: List[SurfacePoint],
        graph_name: str = "",
    ) -> None:
        self.axes = tuple(axes)
        self.points = list(points)
        self.graph_name = graph_name
        ids = [point.point_id for point in self.points]
        if len(set(ids)) != len(ids):
            raise SynthesisError(f"duplicate surface point ids: {ids}")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SurfacePoint]:
        return iter(self.points)

    def get(self, point_id: str) -> SurfacePoint:
        """The point named ``point_id``.

        Raises:
            KeyError: When no such point exists.
        """
        for point in self.points:
            if point.point_id == point_id:
                return point
        raise KeyError(point_id)

    # -- queries -------------------------------------------------------------
    def slice(self, **coords: str) -> "FrontierSurface":
        """The sub-surface where every named axis has the given label.

        Example: ``surface.slice(remote="2")`` fixes the ``remote`` axis
        and keeps all values of the others.

        Raises:
            KeyError: When a named axis does not exist on this surface.
        """
        for axis in coords:
            if axis not in self.axes:
                raise KeyError(
                    f"no axis {axis!r} on this surface (axes: {list(self.axes)})"
                )
        kept = [
            point for point in self.points
            if all(point.coords.get(axis) == str(label)
                   for axis, label in coords.items())
        ]
        return FrontierSurface(self.axes, kept, graph_name=self.graph_name)

    def best_cost_at(
        self, deadline: float
    ) -> Optional[Tuple[SurfacePoint, Design]]:
        """The cheapest ``(point, design)`` meeting ``deadline`` anywhere.

        Answers "which library variant gives the cheapest system that
        finishes by ``deadline``?" — ``None`` when no variant can.
        """
        best: Optional[Tuple[SurfacePoint, Design]] = None
        for point in self.points:
            design = point.best_cost_at(deadline)
            if design is None:
                continue
            if best is None or design.cost < best[1].cost - 1e-9:
                best = (point, design)
        return best

    def dominated_points(self, tol: float = 1e-9) -> List[str]:
        """Point ids whose whole frontier another point's dominates.

        A dominated variant is never the right library choice: at every
        budget some other variant is at least as cheap and as fast, and
        somewhere strictly better.  Infeasible points are dominated by
        any feasible one.
        """
        frontiers = {
            point.point_id: point.frontier_points() for point in self.points
        }
        dominated = []
        for point in self.points:
            mine = frontiers[point.point_id]
            for other in self.points:
                if other.point_id == point.point_id:
                    continue
                if _front_dominates(frontiers[other.point_id], mine, tol):
                    dominated.append(point.point_id)
                    break
        return dominated

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible surface document (see ``docs/dse.md``)."""
        return {
            "version": SURFACE_VERSION,
            "graph_name": self.graph_name,
            "axes": list(self.axes),
            "points": [
                {
                    "point_id": point.point_id,
                    "coords": dict(point.coords),
                    "style": point.style.value,
                    "library": point.library.to_dict(),
                    "fingerprint": point.fingerprint,
                    "front": (
                        point.front.to_dict() if point.front is not None else None
                    ),
                }
                for point in self.points
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the surface as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any], graph) -> "FrontierSurface":
        """Rebuild a surface from :meth:`to_dict` output.

        Args:
            data: The surface document.
            graph: The shared task graph the study ran on (designs do
                not embed their problem).

        Raises:
            SynthesisError: On malformed documents.
        """
        if not isinstance(data, dict) or "points" not in data:
            raise SynthesisError("malformed frontier-surface document")
        version = data.get("version", SURFACE_VERSION)
        if version != SURFACE_VERSION:
            raise SynthesisError(
                f"unsupported surface document version {version!r} "
                f"(this build reads version {SURFACE_VERSION})"
            )
        points = []
        try:
            for entry in data["points"]:
                library = TechnologyLibrary.from_dict(entry["library"])
                front_doc = entry.get("front")
                front = (
                    ParetoFront.from_dict(front_doc, graph, library)
                    if front_doc is not None
                    else None
                )
                points.append(
                    SurfacePoint(
                        entry["point_id"],
                        dict(entry.get("coords", {})),
                        library,
                        InterconnectStyle(entry.get("style", "point_to_point")),
                        entry.get("fingerprint", ""),
                        front,
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise SynthesisError(
                f"malformed frontier-surface document: {exc}"
            ) from exc
        return cls(
            tuple(data.get("axes", ())), points,
            graph_name=data.get("graph_name", ""),
        )

    @classmethod
    def from_json(cls, text: str, graph) -> "FrontierSurface":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SynthesisError(f"invalid frontier-surface JSON: {exc}") from exc
        return cls.from_dict(data, graph)

    def __repr__(self) -> str:
        return (
            f"FrontierSurface({len(self.points)} points over "
            f"axes {list(self.axes)})"
        )
