"""The study orchestrator: one Pareto sweep per grid point, resumable.

:func:`run_study` walks a :class:`~repro.dse.axes.SpaceSpec` grid and
synthesizes each point's full non-inferior front with the existing
machinery — :meth:`Synthesizer.pareto_sweep
<repro.synthesis.synthesizer.Synthesizer.pareto_sweep>` through the
service-tier :class:`~repro.service.cache.ResultCache` and
``SolverOptions(workers=N)`` — so a study is exactly as fast, cached,
and parallel as the layers under it.

Two mechanisms make thousand-point studies practical:

* **Result cache** — every point's sweep is content-addressed by the
  same fingerprint the job service uses, so re-running a study (or
  sharing a disk cache directory between studies, machines, or the
  HTTP service) answers solved points without building a model.
* **JSONL manifest** — each *completed* point appends one line
  ``{"point_id", "fingerprint", "status", ...}`` to the manifest file,
  flushed immediately.  A study killed mid-grid resumes by replaying
  the manifest: completed points load their fronts straight from the
  cache by fingerprint (no solve, no duplicate work), the interrupted
  point and everything after it solve normally.  Re-running a finished
  study is a pure warm no-op.  Manifest entries are keyed by
  *fingerprint*, so editing the spec invalidates exactly the points
  whose content changed.

Per-point failures that mean "this library variant admits no feasible
system" (an uncoverable subset, an infeasible formulation) are recorded
as infeasible grid points, not study failures.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.dse.axes import GridPoint, SpaceSpec
from repro.dse.surface import FrontierSurface, SurfacePoint
from repro.errors import InfeasibleError, SynthesisError, SystemModelError
from repro.solvers.base import SolverOptions
from repro.synthesis.synthesizer import Synthesizer
from repro.taskgraph.graph import TaskGraph

#: Manifest lines written by this build (bump on schema change; loaders
#: ignore lines with a different version rather than misreading them).
MANIFEST_VERSION = 1


@dataclass
class StudyResult:
    """What :func:`run_study` returns: the surface plus an honest ledger.

    Attributes:
        surface: The assembled :class:`FrontierSurface`.
        points_total: Grid size.
        replayed: Points answered by manifest replay (front loaded from
            the cache by fingerprint; no synthesizer ran).
        cache_hits: Points whose sweep was answered by the result cache
            (a synthesizer ran, but solved nothing).
        solved: Points that actually swept (cold work).
        infeasible: Points with no feasible system.
        seconds: Wall-clock of the whole study.
        manifest_path: The manifest journaled to, if any.
    """

    surface: FrontierSurface
    points_total: int = 0
    replayed: int = 0
    cache_hits: int = 0
    solved: int = 0
    infeasible: int = 0
    seconds: float = 0.0
    manifest_path: Optional[Path] = None

    @property
    def warm_fraction(self) -> float:
        """Fraction of points answered without solving (replay + cache)."""
        if self.points_total == 0:
            return 0.0
        return (self.replayed + self.cache_hits) / self.points_total

    def summary(self) -> str:
        """One-line human summary (what ``sos dse run`` prints)."""
        return (
            f"{self.points_total} points: {self.solved} solved, "
            f"{self.cache_hits} cache hits, {self.replayed} replayed, "
            f"{self.infeasible} infeasible "
            f"(warm fraction {self.warm_fraction:.0%}, "
            f"{self.seconds:.2f}s)"
        )


@dataclass
class _Manifest:
    """The study journal: append-only JSONL keyed by sweep fingerprint."""

    path: Optional[Path]
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Optional[Union[str, Path]]) -> "_Manifest":
        """Read completed-point entries; tolerate torn final lines.

        A study killed mid-write leaves at most one truncated line at
        the tail; unparseable or wrong-version lines are skipped, so a
        resume never trusts a record it cannot read.
        """
        if path is None:
            return cls(None)
        path = Path(path)
        entries: Dict[str, Dict[str, object]] = {}
        if path.exists():
            for line in path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail from a mid-write kill
                if (
                    not isinstance(entry, dict)
                    or entry.get("version") != MANIFEST_VERSION
                    or "fingerprint" not in entry
                ):
                    continue
                entries[str(entry["fingerprint"])] = entry
        return cls(path, entries)

    def record(self, entry: Dict[str, object]) -> None:
        """Append one completed point, flushed so a kill cannot lose it."""
        entry = {"version": MANIFEST_VERSION, **entry}
        self.entries[str(entry["fingerprint"])] = entry
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()


def run_study(
    graph: TaskGraph,
    spec: SpaceSpec,
    *,
    solver: str = "auto",
    max_designs: int = 64,
    cost_step: float = 1e-4,
    workers: int = 1,
    cache: Optional["ResultCache"] = None,
    manifest: Optional[Union[str, Path]] = None,
    seed_incumbent: bool = False,
    validate: bool = True,
    on_point: Optional[Callable[[GridPoint, str], None]] = None,
) -> StudyResult:
    """Sweep every grid point of ``spec`` and assemble the surface.

    Args:
        graph: The application task graph (shared across the grid).
        spec: The technology space to explore.
        solver: Backend name per point (``"auto"``, ``"highs"``,
            ``"bozo"``).
        max_designs: Per-point front-size bound (part of the cache key).
        cost_step: Per-point sweep cap decrement (part of the cache key).
        workers: Branch-and-bound workers per solve
            (``SolverOptions(workers=N)``); result-invariant, so warm
            cache entries are shared across worker counts.
        cache: Optional :class:`~repro.service.cache.ResultCache`.  With
            a disk-tier cache, finished points survive restarts and
            manifest replay needs no solver at all.
        manifest: Optional JSONL journal path.  Existing entries whose
            fingerprints match are replayed instead of re-solved; new
            completions are appended as they land.
        seed_incumbent: Seed each solve with the list-scheduling
            incumbent (part of the cache key).
        validate: Independently validate every design.
        on_point: Optional callback ``(grid_point, status)`` after each
            point, where status is ``"replayed"``, ``"cache_hit"``,
            ``"solved"``, or ``"infeasible"``.  Exceptions propagate —
            the manifest already holds every completed point, so an
            aborting callback behaves exactly like a mid-study kill.

    Returns:
        A :class:`StudyResult`; per-point fronts are byte-identical to
        standalone ``pareto_sweep`` calls on the same transformed
        library (property-tested).
    """
    started = time.perf_counter()
    journal = _Manifest.load(manifest)
    solver_options = (
        SolverOptions(workers=workers) if workers and workers > 1 else None
    )
    result = StudyResult(
        surface=FrontierSurface(spec.axis_names(), [], graph_name=graph.name),
        manifest_path=journal.path,
    )
    points: List[SurfacePoint] = []
    for grid_point in spec.points():
        result.points_total += 1
        synth = Synthesizer(
            graph, grid_point.library, style=grid_point.style, solver=solver,
            solver_options=solver_options, incremental=True,
            seed_incumbent=seed_incumbent,
        )
        key = synth.sweep_fingerprint(
            max_designs=max_designs, cost_step=cost_step
        )
        status, front = _resolve_point(
            result, journal, key, synth, graph, grid_point,
            max_designs=max_designs, cost_step=cost_step,
            validate=validate, cache=cache,
        )
        points.append(
            SurfacePoint(
                grid_point.point_id, grid_point.coords, grid_point.library,
                grid_point.style, key, front,
                from_cache=status in ("replayed", "cache_hit"),
            )
        )
        if on_point is not None:
            on_point(grid_point, status)
    result.surface = FrontierSurface(
        spec.axis_names(), points, graph_name=graph.name
    )
    result.seconds = time.perf_counter() - started
    return result


def _resolve_point(
    result: StudyResult,
    journal: _Manifest,
    key: str,
    synth: Synthesizer,
    graph: TaskGraph,
    grid_point: GridPoint,
    *,
    max_designs: int,
    cost_step: float,
    validate: bool,
    cache: Optional["ResultCache"],
):
    """One grid point: manifest replay, cached sweep, or cold solve.

    Returns ``(status, front_or_None)`` and updates the result counters;
    every terminal outcome lands one manifest line.
    """
    entry = journal.entries.get(key)
    if entry is not None:
        if entry.get("status") == "infeasible":
            result.replayed += 1
            result.infeasible += 1
            return "replayed", None
        if cache is not None:
            front = cache.get_front(key, graph, grid_point.library)
            if front is not None:
                result.replayed += 1
                return "replayed", front
        # Entry exists but the front is unrecoverable (no cache, or the
        # entry was evicted from every tier): fall through and re-solve.
    hits_before = cache.hits if cache is not None else 0
    point_started = time.perf_counter()
    try:
        front = synth.pareto_sweep(
            max_designs=max_designs, cost_step=cost_step,
            validate=validate, cache=cache,
        )
    except (InfeasibleError, SynthesisError, SystemModelError):
        result.infeasible += 1
        journal.record({
            "point_id": grid_point.point_id,
            "fingerprint": key,
            "status": "infeasible",
            "coords": dict(grid_point.coords),
            "seconds": round(time.perf_counter() - point_started, 6),
        })
        return "infeasible", None
    was_hit = cache is not None and cache.hits > hits_before
    if was_hit:
        result.cache_hits += 1
    else:
        result.solved += 1
    journal.record({
        "point_id": grid_point.point_id,
        "fingerprint": key,
        "status": "done",
        "coords": dict(grid_point.coords),
        "designs": len(front),
        "min_cost": min(design.cost for design in front),
        "min_makespan": min(design.makespan for design in front),
        "cached": was_hit,
        "seconds": round(time.perf_counter() - point_started, 6),
    })
    return ("cache_hit" if was_hit else "solved"), front
