"""Command-line interface.

Examples::

    sos synthesize problem.json --cost-cap 13 --gantt
    sos synthesize example1 --trace solve.jsonl --progress
    sos sweep problem.json --style bus
    sos trace solve.jsonl --replay-stats
    sos paper --artifact table2
    sos info problem.json
    sos serve --port 8321 --cache-dir .sos-cache

Installed both as ``sos`` and as ``repro`` (the same program under the
package's name), so ``repro trace solve.jsonl`` works too.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.core.options import FormulationOptions, Objective
from repro.errors import ReproError
from repro.synthesis.synthesizer import Synthesizer
from repro.system.examples import example1_library, example2_library
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.taskgraph.examples import example1, example2
from repro.taskgraph.serialization import graph_from_dict


def load_problem(path: str) -> tuple:
    """Load a problem file: a JSON object with ``graph`` and ``library``.

    Format::

        {
          "graph": {... task-graph document ...},
          "library": {
            "types": [{"name": "p1", "cost": 4, "exec_times": {"S1": 1}}],
            "instances_per_type": 2,
            "link_cost": 1.0, "local_delay": 0.0, "remote_delay": 1.0
          }
        }

    The built-in instances ``example1`` / ``example2`` may be named instead
    of a path.
    """
    if path == "example1":
        return example1(), example1_library()
    if path == "example2":
        return example2(), example2_library()
    document = json.loads(Path(path).read_text())
    graph = graph_from_dict(document["graph"])
    library = TechnologyLibrary.from_dict(document["library"])
    return graph, library


def _style(name: str) -> InterconnectStyle:
    return {
        "p2p": InterconnectStyle.POINT_TO_POINT,
        "point_to_point": InterconnectStyle.POINT_TO_POINT,
        "bus": InterconnectStyle.BUS,
        "ring": InterconnectStyle.RING,
    }[name]


def _solver_options(args: argparse.Namespace, sink, workers: int = 1):
    """Build :class:`SolverOptions` from CLI flags (``None`` when default).

    ``sink`` is an open trace sink (or ``None``); it is referenced by the
    returned options, so the caller owns closing it after the solve.
    ``workers`` is the branch-and-bound worker count (sweep-level
    parallelism is a separate knob passed to ``pareto_sweep`` instead).
    ``--fast`` opts into the nondeterministic work-stealing mode: same
    objectives, unordered exploration.
    """
    progress = getattr(args, "progress", False)
    fast = getattr(args, "fast", False)
    cuts = getattr(args, "cuts", "auto")
    cut_rounds = getattr(args, "cut_rounds", 5)
    strong_branching = getattr(args, "strong_branching", 8)
    pricing = getattr(args, "pricing", "devex")
    non_default_cuts = cuts != "auto" or cut_rounds != 5 or strong_branching != 8
    if (workers <= 1 and sink is None and not progress and not fast
            and not non_default_cuts and pricing == "devex"):
        return None
    from repro.obs.progress import print_progress
    from repro.solvers.base import SolverOptions

    return SolverOptions(
        workers=workers,
        deterministic=not fast,
        cuts=cuts,
        cut_rounds=cut_rounds,
        strong_branching=strong_branching,
        pricing=pricing,
        trace=sink,
        on_progress=print_progress if progress else None,
    )


def _open_trace_sink(args: argparse.Namespace):
    """A :class:`JsonlTraceSink` for ``--trace FILE``, or ``None``."""
    path = getattr(args, "trace", None)
    if not path:
        return None
    from repro.obs.sinks import JsonlTraceSink

    return JsonlTraceSink(path)


def cmd_synthesize(args: argparse.Namespace) -> int:
    """Synthesize one optimal design and print/save it."""
    graph, library = load_problem(args.problem)
    sink = _open_trace_sink(args)
    try:
        synth = Synthesizer(
            graph, library, style=_style(args.style), solver=args.solver,
            solver_options=_solver_options(args, sink, workers=args.workers),
            seed_incumbent=args.seed_incumbent,
        )
        design = synth.synthesize(
            cost_cap=args.cost_cap,
            deadline=args.deadline,
            objective=Objective.MIN_COST if args.min_cost else Objective.MIN_MAKESPAN,
        )
    finally:
        if sink is not None:
            sink.close()
    if args.trace:
        print(f"trace written to {args.trace}")
    print(design.describe())
    if args.telemetry and synth.last_stats is not None:
        print(f"\nsolver telemetry: {synth.last_stats.summary()}")
    if args.gantt:
        print()
        print(design.gantt())
    if args.output:
        Path(args.output).write_text(json.dumps(design.to_dict(), indent=2) + "\n")
        print(f"\ndesign written to {args.output}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Enumerate and print the full non-inferior design front."""
    graph, library = load_problem(args.problem)
    sink = _open_trace_sink(args)
    try:
        synth = Synthesizer(
            graph, library, style=_style(args.style), solver=args.solver,
            solver_options=_solver_options(args, sink),
            incremental=args.incremental,
        )
        front = synth.pareto_sweep(
            max_designs=args.max_designs, workers=args.workers
        )
    finally:
        if sink is not None:
            sink.close()
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.csv:
        from repro.analysis.reporting import write_csv

        write_csv(
            args.csv,
            ["design", "cost", "performance", "processors", "links", "solve_seconds"],
            [
                (
                    index + 1, design.cost, design.makespan,
                    " ".join(sorted(design.architecture.processor_names())),
                    len(design.architecture.links), round(design.solve_seconds, 4),
                )
                for index, design in enumerate(front)
            ],
        )
        print(f"front written to {args.csv}")
    print(
        format_table(
            ["design", "cost", "performance", "processors", "links", "solve (s)"],
            [
                (
                    index + 1,
                    design.cost,
                    design.makespan,
                    ", ".join(sorted(design.architecture.processor_names())),
                    len(design.architecture.links),
                    round(design.solve_seconds, 3),
                )
                for index, design in enumerate(front)
            ],
            title=f"Non-inferior designs for {graph.name} ({args.style})",
        )
    )
    if args.telemetry:
        print(f"\nsolver telemetry (whole sweep): {synth.total_stats.summary()}")
    return 0


def cmd_paper(args: argparse.Namespace) -> int:
    """Regenerate paper artifacts and report paper-vs-measured matches."""
    from repro.paper import experiments

    if args.report:
        from repro.paper.report import generate_report

        text = generate_report(solver=args.solver)
        Path(args.report).write_text(text)
        print(f"reproduction report written to {args.report}")
        return 0 if "WITH DEVIATIONS" not in text else 1

    runners = {
        "table2": experiments.run_table_ii,
        "table4": experiments.run_table_iv,
        "table5": experiments.run_table_v,
        "figure2": experiments.run_figure_2,
        "experiment1": experiments.run_experiment_1,
        "experiment2": experiments.run_experiment_2,
    }
    if args.artifact == "sizes":
        print(experiments.model_size_report())
        return 0
    if args.artifact == "all":
        names = list(runners)
    else:
        names = [args.artifact]
    exit_code = 0
    for name in names:
        result = runners[name](solver=args.solver)
        if result.rows:
            print(result.render())
        else:
            print(f"{result.name}: {'OK' if result.matches_paper else 'DEVIATIONS'}")
            for note in result.notes:
                print(f"  note: {note}")
        if result.designs and args.gantt:
            print(result.designs[0].gantt())
        print()
        if not result.matches_paper:
            exit_code = 1
    return exit_code


def cmd_validate(args: argparse.Namespace) -> int:
    """Re-check a saved design against the paper's correctness constraints."""
    from repro.schedule.schedule import Schedule
    from repro.schedule.validate import validate_schedule

    graph, library = load_problem(args.problem)
    document = json.loads(Path(args.design).read_text())
    schedule = Schedule.from_dict(document["schedule"])
    style = InterconnectStyle(document.get("style", "point_to_point"))
    problems = validate_schedule(graph, library, schedule, style=style)
    if problems:
        print(f"INVALID: {len(problems)} violation(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"VALID: makespan {schedule.makespan:g}, "
        f"{len(schedule.processors())} processors, "
        f"{len(schedule.remote_transfers())} remote transfers"
    )
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    """Run the heuristic co-synthesis baseline and compare with the MILP."""
    from repro.analysis.pareto import coverage
    from repro.baselines.heuristic_synthesis import heuristic_pareto
    from repro.baselines.refinement import refine_front

    graph, library = load_problem(args.problem)
    style = _style(args.style)
    front = heuristic_pareto(graph, library, style=style)
    if args.refine:
        front = refine_front(front)
    rows = [
        (design.cost, design.makespan, design.solver_name)
        for design in front
    ]
    print(format_table(
        ["cost", "performance", "method"], rows,
        title=f"Heuristic non-inferior designs for {graph.name}",
    ))
    if args.compare_exact:
        exact = Synthesizer(graph, library, style=style,
                            solver=args.solver).pareto_sweep()
        exact_points = [(d.cost, d.makespan) for d in exact]
        heuristic_points = [(d.cost, d.makespan) for d in front]
        print()
        print(format_table(
            ["cost", "performance"], exact_points,
            title="Exact MILP non-inferior designs",
        ))
        print(f"\nheuristic coverage of the exact front: "
              f"{coverage(exact_points, heuristic_points):.0%}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Schedule analytics of a saved design: critical path, utilization, trace."""
    from repro.schedule.stats import (
        communication_summary,
        critical_path,
        utilization_report,
    )
    from repro.sim.trace import format_trace
    from repro.synthesis.io import load_design

    graph, library = load_problem(args.problem)
    design = load_design(graph, library, args.design)
    print(f"makespan {design.makespan:g}, cost {design.cost:g}")
    print("critical path:",
          " -> ".join(critical_path(graph, library, design.schedule)))
    print()
    print(format_table(
        ["resource", "kind", "busy", "events", "utilization"],
        [
            (u.name, u.kind, u.busy, u.events, f"{u.utilization:.0%}")
            for u in utilization_report(design.schedule)
        ],
        title="resource utilization",
    ))
    summary = communication_summary(design.schedule)
    print()
    print(format_table(["metric", "value"], sorted(summary.items()),
                       title="communication"))
    if args.trace:
        print()
        print(format_trace(design.schedule))
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    """Emit Graphviz DOT for the task graph or a synthesized design."""
    from repro.taskgraph.dot import design_to_dot, graph_to_dot

    graph, library = load_problem(args.problem)
    if args.design:
        design = Synthesizer(graph, library, style=_style(args.style),
                             solver=args.solver).synthesize(cost_cap=args.cost_cap)
        text = design_to_dot(design)
    else:
        text = graph_to_dot(graph)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"DOT written to {args.output}")
    else:
        print(text)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a JSONL solve trace: timeline plus per-phase/worker profile."""
    from repro.obs import check_schema, read_trace, render_trace_summary, replay_stats

    events = read_trace(args.trace_file)
    problems = check_schema(events)
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    print(render_trace_summary(events))
    if args.replay_stats:
        stats = replay_stats(events)
        print()
        print(f"replayed stats: {stats.summary()}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the synthesis job service (JSON over HTTP, /v1 API)."""
    import signal

    from repro.service.cache import ResultCache

    # Make SIGINT/SIGTERM interrupt the serve loop even when the process
    # was started with SIGINT ignored (shells background `serve ... &`
    # children that way), so `kill -INT` always shuts down cleanly.
    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, _interrupt)
    signal.signal(signal.SIGTERM, _interrupt)

    sink = _open_trace_sink(args)
    cache = ResultCache(
        byte_budget=args.cache_bytes, directory=args.cache_dir, trace=sink
    )
    executor = "thread" if args.threaded or args.solve_processes < 1 else "process"
    common = dict(
        host=args.host, port=args.port, workers=args.job_workers,
        cache=cache, trace=sink, verbose=args.verbose,
        executor=executor, solve_processes=max(1, args.solve_processes),
        batching=not args.no_batching, max_queued=args.max_queued,
        rate_limit=args.rate_limit, rate_burst=args.rate_burst,
    )
    if args.threaded:
        from repro.service.http import create_server, serve

        server = create_server(**common)
    else:
        from repro.service.asgi import create_async_server

        server = create_async_server(**common)
        server.start()
    print(f"serving on {server.url} "
          f"({args.job_workers} job worker(s), {executor} executor"
          + (f", {max(1, args.solve_processes)} solve process(es)"
             if executor == "process" else "")
          + f", cache budget {args.cache_bytes} bytes"
          + (f", disk tier {args.cache_dir}" if args.cache_dir else "")
          + ")")
    sys.stdout.flush()
    try:
        if args.threaded:
            serve(server)
        else:
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
            finally:
                server.close()
    finally:
        if sink is not None:
            sink.close()
    return 0


#: ``--axis NAME=...`` names accepted by ``sos dse run`` and the axis
#: constructors they map to (numeric axes parse floats; ``style`` takes
#: style names; ``types`` takes ``+``-joined processor-type groups).
_DSE_AXES = ("price", "speed", "remote", "link", "style", "types")


def _parse_axis(spec: str):
    """One ``--axis name=v1,v2,...`` option into a DSE :class:`Axis`."""
    from repro.dse import (
        interconnect_styles,
        link_costs,
        remote_delays,
        scale_prices,
        scale_speeds,
        subset_types,
    )

    name, sep, rest = spec.partition("=")
    values = [v for v in rest.split(",") if v]
    if not sep or not values:
        raise ReproError(
            f"bad --axis {spec!r}: expected NAME=v1,v2,... "
            f"with NAME one of {', '.join(_DSE_AXES)}"
        )
    if name == "style":
        return interconnect_styles(*values)
    if name == "types":
        return subset_types(*values)
    numeric = {
        "price": scale_prices,
        "speed": scale_speeds,
        "remote": remote_delays,
        "link": link_costs,
    }
    if name not in numeric:
        raise ReproError(
            f"unknown axis {name!r} (use one of {', '.join(_DSE_AXES)})"
        )
    try:
        numbers = [float(v) for v in values]
    except ValueError:
        raise ReproError(f"axis {name!r} takes numeric values, got {rest!r}") from None
    return numeric[name](*numbers)


def cmd_dse_run(args: argparse.Namespace) -> int:
    """Run a design-space study: one Pareto sweep per grid point."""
    from repro.dse import SpaceSpec, run_study
    from repro.dse.report import surface_overview

    graph, library = load_problem(args.problem)
    axes = [_parse_axis(spec) for spec in args.axis]
    spec = SpaceSpec(library, axes, style=_style(args.style))
    cache = None
    if args.cache_dir or args.cache_bytes:
        from repro.service.cache import ResultCache

        cache = ResultCache(
            byte_budget=args.cache_bytes or 64 * 1024 * 1024,
            directory=args.cache_dir,
        )

    def progress(point, status):
        if args.verbose:
            print(f"  [{status:>9}] {point.point_id}")

    result = run_study(
        graph, spec, solver=args.solver, max_designs=args.max_designs,
        cost_step=args.cost_step, workers=args.workers, cache=cache,
        manifest=args.manifest, seed_incumbent=args.seed_incumbent,
        on_point=progress,
    )
    print(result.summary())
    if args.output:
        Path(args.output).write_text(result.surface.to_json(indent=2) + "\n")
        print(f"surface written to {args.output}")
    else:
        print()
        print(surface_overview(result.surface))
    if args.expect_warm and result.warm_fraction < 1.0:
        print(
            f"error: expected a fully warm study but warm fraction was "
            f"{result.warm_fraction:.0%} ({result.solved} point(s) solved cold)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_dse_report(args: argparse.Namespace) -> int:
    """Render comparison tables from a saved frontier surface."""
    from repro.dse import FrontierSurface
    from repro.dse.report import frontier_comparison, surface_csv, surface_overview

    graph, _library = load_problem(args.problem)
    surface = FrontierSurface.from_json(Path(args.surface).read_text(), graph)
    print(surface_overview(surface))
    print()
    print(frontier_comparison(surface, deadlines=args.deadlines))
    if args.csv:
        Path(args.csv).write_text(surface_csv(surface))
        print(f"\noverview written to {args.csv}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Describe a problem: pool, MILP size, bounds, per-family row counts."""
    graph, library = load_problem(args.problem)
    from repro.baselines.bounds import cost_lower_bound, makespan_lower_bound
    from repro.core.formulation import SosModelBuilder
    from repro.core.options import FormulationOptions

    built = SosModelBuilder(
        graph, library, FormulationOptions(style=_style(args.style))
    ).build()
    print(f"graph: {graph!r}")
    print(f"pool: {[inst.name for inst in built.pool]}")
    print(f"model: {built.size_report()} (horizon T_M = {built.horizon:g})")
    print(f"makespan lower bound: {makespan_lower_bound(graph, library):g}")
    print(f"cost lower bound: {cost_lower_bound(graph, library):g}")
    print("constraints per family:")
    for family, count in sorted(built.family_counts.items()):
        print(f"  {family}: {count}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Quick kernel benchmark: pivots/sec and wall on the standard models.

    Runs the same instances as ``benchmarks/bench_kernel.py`` (Example 1,
    market split) without the pytest-benchmark harness, so a developer can
    eyeball kernel throughput — or, with ``--profile FILE``, capture a
    cProfile artifact of the hot path for ``pstats``/``snakeviz``.
    """
    from repro.core.formulation import SosModelBuilder
    from repro.solvers.base import SolverOptions
    from repro.solvers.registry import get_solver

    def _market_split(rows: int, binaries: int, seed: int):
        import random as _random

        from repro.milp.model import Model, VarType

        rng = _random.Random(seed)
        model = Model(f"market_split_{rows}x{binaries}")
        x = [model.add_var(f"x{j}", vtype=VarType.BINARY)
             for j in range(binaries)]
        surplus = [model.add_var(f"sp{i}", lb=0) for i in range(rows)]
        deficit = [model.add_var(f"sm{i}", lb=0) for i in range(rows)]
        for i in range(rows):
            weights = [rng.randrange(100) for _ in range(binaries)]
            target = sum(weights) // 2
            model.add(
                sum(w * xj for w, xj in zip(weights, x))
                + surplus[i] - deficit[i] == target,
                name=f"row{i}",
            )
        model.minimize(sum(surplus) + sum(deficit))
        return model

    instances = [
        ("example1", lambda: SosModelBuilder(
            example1(), example1_library()).build().model),
        ("market_split_3x16", lambda: _market_split(3, 16, 0)),
    ]
    pricing = getattr(args, "pricing", "devex")

    def run() -> None:
        for name, build in instances:
            model = build()
            solver = get_solver("bozo", SolverOptions(pricing=pricing))
            start = time.monotonic()
            solution = solver.solve(model)
            wall = time.monotonic() - start
            stats = solution.stats
            rate = stats.lp_pivots / wall if wall > 0 else 0.0
            print(f"{name}: {wall:.3f}s wall, {stats.nodes} nodes, "
                  f"{stats.lp_pivots} pivots ({rate:,.0f} pivots/s), "
                  f"{stats.bound_flips} bound flips, "
                  f"{stats.refactorizations} refactorizations")

    profile_path = getattr(args, "profile", None)
    if profile_path:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        run()
        profiler.disable()
        profiler.dump_stats(profile_path)
        top = pstats.Stats(profiler)
        top.sort_stats("cumulative")
        print(f"\nprofile written to {profile_path} "
              f"(inspect with: python -m pstats {profile_path})")
    else:
        run()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``sos`` argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="sos",
        description="SOS: MILP co-synthesis of heterogeneous multiprocessor systems "
        "(Prakash & Parker, ISCA 1992 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("problem", help="problem JSON path, or 'example1'/'example2'")
        p.add_argument("--style", choices=("p2p", "bus", "ring"), default="p2p")
        p.add_argument("--solver", default="auto", help="auto|highs|bozo")

    p_synth = sub.add_parser("synthesize", help="synthesize one optimal design")
    common(p_synth)
    p_synth.add_argument("--cost-cap", type=float, default=None)
    p_synth.add_argument("--deadline", type=float, default=None)
    p_synth.add_argument("--min-cost", action="store_true",
                         help="minimize cost (default: minimize completion time)")
    p_synth.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p_synth.add_argument("--output", help="write the design JSON here")
    p_synth.add_argument("--telemetry", action="store_true",
                         help="print solver statistics (nodes, pivots, warm starts)")
    p_synth.add_argument("--workers", type=int, default=1,
                         help="parallel branch-and-bound workers (bozo solver); "
                         "the result is identical to the serial solve")
    p_synth.add_argument("--fast", action="store_true",
                         help="with --workers N: work-stealing mode — same "
                         "optimal objective, but exploration order (and the "
                         "returned vertex among ties) may vary run to run")
    p_synth.add_argument("--trace", metavar="FILE", default=None,
                         help="stream structured solve events to this JSONL file "
                         "(inspect it with 'sos trace FILE')")
    p_synth.add_argument("--seed-incumbent", action="store_true",
                         help="seed the solver with a list-scheduling "
                              "heuristic incumbent (same optimum, less tree)")
    p_synth.add_argument("--progress", action="store_true",
                         help="print rate-limited progress lines during the solve")
    p_synth.add_argument("--cuts", choices=("auto", "off"), default="auto",
                         help="root cutting planes (bozo solver): 'auto' runs "
                         "Gomory + cover separation rounds at the root, 'off' "
                         "disables them (default: auto)")
    p_synth.add_argument("--cut-rounds", type=int, default=5, dest="cut_rounds",
                         help="maximum root separation rounds with --cuts auto "
                         "(default: 5)")
    p_synth.add_argument("--strong-branching", type=int, default=8,
                         dest="strong_branching", metavar="K",
                         help="probe the K most fractional root candidates with "
                         "budgeted dual simplex before the first branch; 0 "
                         "disables (default: 8)")
    p_synth.add_argument("--pricing", choices=("devex", "dantzig"), default="devex",
                         help="revised-simplex pricing rule (bozo solver): "
                         "'devex' reference-framework weights (default, fast) "
                         "or 'dantzig' legacy block pricing")
    p_synth.set_defaults(func=cmd_synthesize)

    p_sweep = sub.add_parser("sweep", help="enumerate all non-inferior designs")
    common(p_sweep)
    p_sweep.add_argument("--max-designs", type=int, default=64)
    p_sweep.add_argument("--csv", help="also write the front to this CSV file")
    p_sweep.add_argument("--incremental", action="store_true",
                         help="build the MILP once and retighten it across the sweep")
    p_sweep.add_argument("--telemetry", action="store_true",
                         help="print solver statistics aggregated over the sweep")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="solve cost caps concurrently on this many processes; "
                         "the front is identical to the serial sweep")
    p_sweep.add_argument("--fast", action="store_true",
                         help="with --workers N: keep probe designs instead of "
                         "re-solving canonically — same front costs/makespans, "
                         "schedules may be any alternative optimum")
    p_sweep.add_argument("--trace", metavar="FILE", default=None,
                         help="stream structured sweep/solve events to this JSONL file")
    p_sweep.add_argument("--progress", action="store_true",
                         help="print rate-limited progress lines during each solve")
    p_sweep.add_argument("--cuts", choices=("auto", "off"), default="auto",
                         help="root cutting planes (bozo solver); see 'synthesize --cuts'")
    p_sweep.add_argument("--cut-rounds", type=int, default=5, dest="cut_rounds",
                         help="maximum root separation rounds with --cuts auto "
                         "(default: 5)")
    p_sweep.add_argument("--strong-branching", type=int, default=8,
                         dest="strong_branching", metavar="K",
                         help="root strong-branching candidate limit; 0 disables "
                         "(default: 8)")
    p_sweep.add_argument("--pricing", choices=("devex", "dantzig"), default="devex",
                         help="revised-simplex pricing rule (bozo solver); "
                         "see 'synthesize --pricing'")
    p_sweep.set_defaults(func=cmd_sweep)

    p_paper = sub.add_parser("paper", help="regenerate a paper table/figure")
    p_paper.add_argument(
        "--artifact",
        choices=("table2", "table4", "table5", "figure2", "experiment1",
                 "experiment2", "sizes", "all"),
        default="all",
    )
    p_paper.add_argument("--solver", default="auto")
    p_paper.add_argument("--gantt", action="store_true")
    p_paper.add_argument("--report",
                         help="regenerate everything into a markdown report file")
    p_paper.set_defaults(func=cmd_paper)

    p_info = sub.add_parser("info", help="describe a problem and its MILP")
    common(p_info)
    p_info.set_defaults(func=cmd_info)

    p_validate = sub.add_parser(
        "validate", help="re-check a saved design against the §3.3 constraints"
    )
    common(p_validate)
    p_validate.add_argument("design", help="design JSON produced by 'synthesize --output'")
    p_validate.set_defaults(func=cmd_validate)

    p_baseline = sub.add_parser(
        "baseline", help="heuristic co-synthesis (allocation enumeration + list scheduling)"
    )
    common(p_baseline)
    p_baseline.add_argument("--refine", action="store_true",
                            help="apply local-search refinement")
    p_baseline.add_argument("--compare-exact", action="store_true",
                            help="also run the exact MILP sweep and report coverage")
    p_baseline.set_defaults(func=cmd_baseline)

    p_stats = sub.add_parser(
        "stats", help="schedule analytics of a saved design (critical path, utilization)"
    )
    common(p_stats)
    p_stats.add_argument("design", help="design JSON produced by 'synthesize --output'")
    p_stats.add_argument("--trace", action="store_true",
                         help="also print the chronological event trace")
    p_stats.set_defaults(func=cmd_stats)

    p_dot = sub.add_parser("dot", help="emit Graphviz DOT (task graph or design)")
    common(p_dot)
    p_dot.add_argument("--design", action="store_true",
                       help="synthesize and render the system instead of the graph")
    p_dot.add_argument("--cost-cap", type=float, default=None)
    p_dot.add_argument("--output", help="write DOT here instead of stdout")
    p_dot.set_defaults(func=cmd_dot)

    p_bench = sub.add_parser(
        "bench", help="quick kernel benchmark (pivots/sec, wall) on the "
        "standard models"
    )
    p_bench.add_argument("--pricing", choices=("devex", "dantzig"),
                         default="devex",
                         help="revised-simplex pricing rule to benchmark")
    p_bench.add_argument("--profile", metavar="FILE", default=None,
                         help="capture the run under cProfile and dump the "
                         "stats artifact here (inspect with python -m pstats)")
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="run the synthesis job service (JSON over HTTP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="TCP port (0 picks a free ephemeral port)")
    p_serve.add_argument("--job-workers", type=int, default=2,
                         help="concurrent synthesis jobs")
    p_serve.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                         help="in-memory result-cache budget in bytes")
    p_serve.add_argument("--cache-dir", default=None,
                         help="optional on-disk cache directory "
                         "(survives restarts)")
    p_serve.add_argument("--threaded", action="store_true",
                         help="use the legacy thread-per-request HTTP server "
                              "instead of the asyncio front end")
    p_serve.add_argument("--solve-processes", type=int, default=2,
                         help="solve worker processes (0 = solve on the job "
                              "threads, the pre-/v1 behaviour)")
    p_serve.add_argument("--no-batching", action="store_true",
                         help="disable coalescing of compatible sweep requests")
    p_serve.add_argument("--max-queued", type=int, default=None,
                         help="bound the job queue; excess submissions get 429")
    p_serve.add_argument("--rate-limit", type=float, default=None,
                         help="sustained submissions/second (token bucket); "
                              "over-rate POSTs get 429 + Retry-After")
    p_serve.add_argument("--rate-burst", type=float, default=None,
                         help="token-bucket burst size (default: --rate-limit)")
    p_serve.add_argument("--trace", metavar="FILE", default=None,
                         help="stream cache/job/solve events to this JSONL file")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log HTTP requests to stderr")
    p_serve.set_defaults(func=cmd_serve)

    p_dse = sub.add_parser(
        "dse", help="design-space exploration over technology axes"
    )
    dse_sub = p_dse.add_subparsers(dest="dse_command", required=True)

    p_dse_run = dse_sub.add_parser(
        "run", help="sweep a technology grid (one Pareto front per point)"
    )
    common(p_dse_run)
    p_dse_run.add_argument(
        "--axis", action="append", required=True, metavar="NAME=V1,V2,...",
        help="technology axis (repeatable); NAME is one of "
        "price, speed, remote, link, style, types — e.g. "
        "--axis price=0.5,1,2 --axis style=p2p,bus; "
        "'types' values are '+'-joined type names (p1+p2)",
    )
    p_dse_run.add_argument("--max-designs", type=int, default=64,
                           help="per-point front-size bound (default: 64)")
    p_dse_run.add_argument("--cost-step", type=float, default=1e-4,
                           help="per-point sweep cap decrement (default: 1e-4)")
    p_dse_run.add_argument("--workers", type=int, default=1,
                           help="branch-and-bound workers per solve")
    p_dse_run.add_argument("--cache-dir", default=None,
                           help="on-disk result cache shared across studies "
                           "(and with 'sos serve')")
    p_dse_run.add_argument("--cache-bytes", type=int, default=0,
                           help="in-memory result-cache budget in bytes "
                           "(implied by --cache-dir)")
    p_dse_run.add_argument("--manifest", metavar="FILE", default=None,
                           help="JSONL study journal; an interrupted study "
                           "resumes from its completed points")
    p_dse_run.add_argument("--output", metavar="FILE", default=None,
                           help="write the frontier surface JSON here "
                           "(render it later with 'sos dse report')")
    p_dse_run.add_argument("--seed-incumbent", action="store_true",
                           help="seed each solve with the list-scheduling "
                           "incumbent")
    p_dse_run.add_argument("--expect-warm", action="store_true",
                           help="exit nonzero unless every point was answered "
                           "warm (cache hit or manifest replay) — CI guard")
    p_dse_run.add_argument("--verbose", action="store_true",
                           help="print one status line per grid point")
    p_dse_run.set_defaults(func=cmd_dse_run)

    p_dse_report = dse_sub.add_parser(
        "report", help="render comparison tables from a saved surface"
    )
    common(p_dse_report)
    p_dse_report.add_argument("surface",
                              help="surface JSON written by 'dse run --output'")
    p_dse_report.add_argument("--deadlines", type=float, nargs="+", default=None,
                              help="explicit deadline ladder for the "
                              "comparison matrix")
    p_dse_report.add_argument("--csv", metavar="FILE", default=None,
                              help="also write the overview as CSV here")
    p_dse_report.set_defaults(func=cmd_dse_report)

    p_trace = sub.add_parser(
        "trace", help="summarize a JSONL solve trace written by --trace"
    )
    p_trace.add_argument("trace_file", help="JSONL trace file written by --trace FILE")
    p_trace.add_argument("--replay-stats", action="store_true",
                         help="also rebuild SolveStats from the event stream")
    p_trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
