"""Exception hierarchy for the SOS reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ModelError(ReproError):
    """A MILP model was constructed or used incorrectly."""


class SolverError(ReproError):
    """A solver failed in a way that is not simply infeasibility."""


class UnknownSolverError(SolverError):
    """An unrecognized solver name was requested from the registry.

    The message lists the registered backends and, when a close match
    exists, suggests the likely intended name.  Subclasses
    :class:`SolverError`, so ``except SolverError`` call sites keep
    working.
    """


class InfeasibleError(SolverError):
    """The model was proven infeasible."""


class UnboundedError(SolverError):
    """The model was proven unbounded."""


class TimeLimitError(SolverError):
    """The solver hit its time limit before proving optimality."""


class CancelledError(ReproError):
    """A solve was cooperatively cancelled.

    Raised from inside the branch-and-bound node loop (and the sweep
    orchestrators) when :attr:`~repro.solvers.base.SolverOptions.should_stop`
    returns true.  Deliberately *not* a :class:`SolverError`: cancellation
    is a caller decision, not a backend failure, and retry loops (e.g. the
    job service's transient-failure retries) must never swallow it.
    """


class TaskGraphError(ReproError):
    """A task data-flow graph violates the task-model rules."""


class SystemModelError(ReproError):
    """A technology library or architecture violates the system-model rules."""


class SynthesisError(ReproError):
    """Synthesis could not produce a design (e.g. no capable processor)."""


class ScheduleError(ReproError):
    """A schedule is malformed."""


class ValidationError(ScheduleError):
    """A schedule violates one of the paper's correctness constraints.

    The message names the violated constraint family using the paper's
    equation numbers (e.g. ``processor-usage-exclusion (3.3.9)``).
    """


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency (e.g. deadlock)."""
