"""Linear constraints for the MILP modeling layer."""

from __future__ import annotations

import enum
from typing import Mapping, Union

from repro.errors import ModelError
from repro.milp.expr import LinExpr, Number, Var


class Sense(enum.Enum):
    """Relational sense of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "="


class Constraint:
    """A linear constraint ``expr (<=|>=|=) rhs``.

    Internally normalized so that ``expr`` carries all variable terms and a
    zero constant, with the constant folded into ``rhs``.  Constraints are
    produced by comparing :class:`~repro.milp.expr.LinExpr` /
    :class:`~repro.milp.expr.Var` objects, e.g. ``model.add(x + y <= 3)``.

    Attributes:
        expr: Left-hand side with ``constant == 0``.
        sense: Relational sense.
        rhs: Right-hand-side scalar.
        name: Assigned when the constraint is added to a model.
    """

    __slots__ = ("expr", "sense", "rhs", "name")

    def __init__(self, expr: LinExpr, sense: Sense, rhs: Number, name: str = "") -> None:
        normalized = expr.copy()
        rhs_value = float(rhs) - normalized.constant
        normalized.constant = 0.0
        self.expr = normalized
        self.sense = sense
        self.rhs = rhs_value
        self.name = name

    @classmethod
    def _from_comparison(
        cls,
        left: Union[LinExpr, Var, Number],
        right: Union[LinExpr, Var, Number],
        sense: Sense,
    ) -> "Constraint":
        left_expr = left if isinstance(left, LinExpr) else LinExpr() + left
        difference = left_expr - right
        rhs = -difference.constant
        difference.constant = 0.0
        return cls(difference, sense, rhs)

    def is_satisfied(self, values: Mapping[Var, Number], tol: float = 1e-6) -> bool:
        """Check this constraint under a variable assignment.

        Args:
            values: Mapping from variables to values.
            tol: Absolute feasibility tolerance.
        """
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol

    def violation(self, values: Mapping[Var, Number]) -> float:
        """Nonnegative amount by which the constraint is violated (0 if satisfied)."""
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def __bool__(self) -> bool:
        # Truth-testing a constraint is always a bug: it happens when Python
        # chains comparisons ('a <= b <= c') or when a constraint is used in
        # an 'if'.  Fail loudly instead of silently dropping half the chain.
        raise ModelError(
            "a Constraint has no truth value; avoid chained comparisons like "
            "'a <= b <= c' when building constraints"
        )

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} {self.rhs:g}{label})"


def validate_constraint(constraint: object) -> Constraint:
    """Ensure an object passed to ``Model.add`` really is a constraint.

    A common modeling bug is writing ``model.add(x <= y <= z)`` (Python
    chains comparisons and the result is a bool) — this helper turns that
    mistake into a clear error.
    """
    if isinstance(constraint, bool):
        raise ModelError(
            "got a bool instead of a Constraint; avoid chained comparisons "
            "like 'a <= b <= c' when building constraints"
        )
    if not isinstance(constraint, Constraint):
        raise ModelError(f"expected a Constraint, got {type(constraint).__name__}")
    return constraint
