"""CPLEX-LP-format reader — the inverse of :mod:`repro.milp.lpwriter`.

Supports the subset the writer emits (which is also the common core of the
format): ``Minimize``/``Maximize``, ``Subject To``, ``Bounds``, ``Binary``,
``General``, ``End``, with named rows, infinities, and signed coefficients.
Round-tripping a model through write+read preserves its mathematical
content exactly (a property test asserts this).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.milp.constraint import Sense
from repro.milp.expr import LinExpr, VarType
from repro.milp.model import Model

_SECTIONS = {
    "minimize": "objective",
    "maximize": "objective",
    "subject to": "constraints",
    "such that": "constraints",
    "st": "constraints",
    "s.t.": "constraints",
    "bounds": "bounds",
    "binary": "binary",
    "binaries": "binary",
    "bin": "binary",
    "general": "general",
    "generals": "general",
    "gen": "general",
    "end": "end",
}

_TERM = re.compile(r"([+-])?\s*(\d+(?:\.\d*)?(?:[eE][+-]?\d+)?)?\s*([A-Za-z_][A-Za-z0-9_.]*)")
_NUMBER = re.compile(r"[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?")


def read_lp(text: str) -> Model:
    """Parse LP-format text into a :class:`Model`.

    Raises:
        ModelError: On malformed input.
    """
    model = Model("from_lp")
    # Strip comments, join physical lines, and split into logical pieces.
    lines = []
    for raw in text.splitlines():
        line = raw.split("\\")[0].strip()
        if line:
            lines.append(line)

    section = None
    maximize = False
    pending: List[str] = []
    objective_text: List[str] = []
    constraint_texts: List[Tuple[Optional[str], str]] = []
    bound_lines: List[str] = []
    binary_names: List[str] = []
    general_names: List[str] = []

    def flush_constraint() -> None:
        if pending:
            joined = " ".join(pending)
            name, body = _split_label(joined)
            constraint_texts.append((name, body))
            pending.clear()

    for line in lines:
        lowered = line.lower().rstrip(":")
        if lowered in _SECTIONS:
            flush_constraint()
            section = _SECTIONS[lowered]
            maximize = maximize or lowered == "maximize"
            continue
        if section == "objective":
            objective_text.append(line)
        elif section == "constraints":
            pending.append(line)
            if _has_relation(line):
                flush_constraint()
        elif section == "bounds":
            bound_lines.append(line)
        elif section == "binary":
            binary_names.extend(line.split())
        elif section == "general":
            general_names.extend(line.split())
        elif section == "end":
            break
        else:
            raise ModelError(f"LP text before any section header: {line!r}")
    flush_constraint()

    if not objective_text:
        raise ModelError("LP text has no objective section")

    # Collect every variable name first (from all expressions and lists).
    names: Dict[str, None] = {}
    _, objective_body = _split_label(" ".join(objective_text))
    for piece in [objective_body] + [body for _, body in constraint_texts]:
        expression_part = re.split(r"<=|>=|=", piece)[0]
        for match in _TERM.finditer(expression_part):
            names.setdefault(match.group(3), None)
    for name in binary_names + general_names:
        names.setdefault(name, None)
    # Variables may legally appear only in Bounds (zero everywhere else).
    keyword = {"free", "inf", "infinity"}
    for line in bound_lines:
        for match in re.finditer(r"[A-Za-z_][A-Za-z0-9_.]*", line):
            token = match.group(0)
            if token.lower() not in keyword and not _NUMBER.fullmatch(token):
                names.setdefault(token, None)

    variables = {name: model.add_var(name) for name in names}

    # Constraints.
    for label, body in constraint_texts:
        expr, sense, rhs = _parse_relation(body, variables)
        from repro.milp.constraint import Constraint

        model.add(Constraint(expr, sense, rhs), name=label or "")

    # Objective.
    objective = _parse_expression(objective_body, variables)
    model.minimize(-objective if maximize else objective)

    # Bounds.
    for line in bound_lines:
        _apply_bound(line, variables)

    # Types (after bounds: binaries override to [0, 1]).
    for name in binary_names:
        var = variables[name]
        var.vtype = VarType.BINARY
        var.lb, var.ub = 0.0, 1.0
    for name in general_names:
        variables[name].vtype = VarType.INTEGER
    return model


def _split_label(text: str) -> Tuple[Optional[str], str]:
    """Split a leading ``name:`` row label off an expression."""
    if ":" in text:
        label, _, rest = text.partition(":")
        label = label.strip()
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", label):
            return label, rest.strip()
    return None, text.strip()


def _has_relation(text: str) -> bool:
    return bool(re.search(r"<=|>=|(?<![<>])=", text))


def _parse_relation(text: str, variables: Dict[str, object]):
    match = re.search(r"(<=|>=|=)", text)
    if not match:
        raise ModelError(f"constraint without relation: {text!r}")
    sense = {"<=": Sense.LE, ">=": Sense.GE, "=": Sense.EQ}[match.group(1)]
    left = text[: match.start()].strip()
    right = text[match.end():].strip()
    rhs_match = _NUMBER.fullmatch(right)
    if not rhs_match:
        raise ModelError(f"constraint right-hand side is not a number: {right!r}")
    expr = _parse_expression(left, variables)
    return expr, sense, float(right)


def _parse_expression(text: str, variables: Dict[str, object]) -> LinExpr:
    expr = LinExpr()
    position = 0
    text = text.strip()
    if not text or text == "0":
        return expr
    for match in _TERM.finditer(text):
        sign = -1.0 if match.group(1) == "-" else 1.0
        coefficient = float(match.group(2)) if match.group(2) else 1.0
        name = match.group(3)
        if name not in variables:
            raise ModelError(f"unknown variable {name!r} in expression {text!r}")
        expr = expr + sign * coefficient * variables[name]
        position = match.end()
    return expr


def _apply_bound(line: str, variables: Dict[str, object]) -> None:
    tokens = line.replace("<=", " <= ").replace(">=", " >= ").split()

    def value(token: str) -> float:
        lowered = token.lower().lstrip("+")
        if lowered in ("-inf", "-infinity"):
            return -math.inf
        if lowered in ("inf", "infinity"):
            return math.inf
        return float(token)

    if len(tokens) == 5 and tokens[1] == "<=" and tokens[3] == "<=":
        var = variables.get(tokens[2])
        if var is None:
            raise ModelError(f"bound for unknown variable {tokens[2]!r}")
        var.lb, var.ub = value(tokens[0]), value(tokens[4])
    elif len(tokens) == 3 and tokens[1] in ("<=", ">="):
        if tokens[0] in variables:
            var = variables[tokens[0]]
            if tokens[1] == "<=":
                var.ub = value(tokens[2])
            else:
                var.lb = value(tokens[2])
        elif tokens[2] in variables:
            var = variables[tokens[2]]
            if tokens[1] == "<=":
                var.lb = value(tokens[0])
            else:
                var.ub = value(tokens[0])
        else:
            raise ModelError(f"bound references unknown variable: {line!r}")
    elif len(tokens) == 3 and tokens[1] == "=":
        var = variables.get(tokens[0])
        if var is None:
            raise ModelError(f"bound for unknown variable {tokens[0]!r}")
        var.lb = var.ub = value(tokens[2])
    elif len(tokens) == 2 and tokens[1].lower() == "free":
        var = variables.get(tokens[0])
        if var is None:
            raise ModelError(f"bound for unknown variable {tokens[0]!r}")
        var.lb, var.ub = -math.inf, math.inf
    else:
        raise ModelError(f"unsupported bound line: {line!r}")
