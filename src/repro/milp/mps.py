"""MPS-format writer and reader — the matrix-file sibling of the LP codec.

The paper's toolchain exchanged matrix files between the generator and
XLP; MPS is the modern interchange format every external solver reads.
The writer emits free-format MPS (``NAME``/``ROWS``/``COLUMNS`` with
integrality markers/``RHS``/``BOUNDS``/``ENDATA``) and the reader parses
the same subset — which is also the common core of the format — so a
model round-trips through write+read preserving its mathematical content
exactly, and the files feed straight into HiGHS for cross-checking.
"""

from __future__ import annotations

import io
import math
import re
from typing import Dict, List, TextIO, Tuple

from repro.errors import ModelError
from repro.milp.constraint import Constraint, Sense
from repro.milp.expr import LinExpr, VarType
from repro.milp.lpwriter import _sanitize
from repro.milp.model import Model

_OBJECTIVE_ROW = "obj"
_ROW_SENSE = {Sense.LE: "L", Sense.GE: "G", Sense.EQ: "E"}
_SENSE_OF = {"L": Sense.LE, "G": Sense.GE, "E": Sense.EQ}


def write_mps(model: Model, stream: TextIO) -> None:
    """Write ``model`` to ``stream`` in free-format MPS."""
    name_of = {var: _sanitize(var.name) for var in model.variables}
    if len(set(name_of.values())) != len(name_of):
        for var in model.variables:
            name_of[var] = f"{name_of[var]}_{var.index}"
    row_names = []
    seen = set()
    for index, constraint in enumerate(model.constraints):
        name = _sanitize(constraint.name) if constraint.name else f"c{index}"
        if name in seen or name == _OBJECTIVE_ROW:
            name = f"{name}_{index}"
        seen.add(name)
        row_names.append(name)

    stream.write(f"NAME          {_sanitize(model.name)}\n")
    stream.write("ROWS\n")
    stream.write(f" N  {_OBJECTIVE_ROW}\n")
    for name, constraint in zip(row_names, model.constraints):
        stream.write(f" {_ROW_SENSE[constraint.sense]}  {name}\n")

    # Per-variable column entries: objective first, then rows in order.
    entries: Dict[object, List[Tuple[str, float]]] = {var: [] for var in model.variables}
    for var, coeff in model.objective.coeffs.items():
        if coeff:
            entries[var].append((_OBJECTIVE_ROW, float(coeff)))
    for name, constraint in zip(row_names, model.constraints):
        for var, coeff in constraint.expr.coeffs.items():
            if coeff:
                entries[var].append((name, float(coeff)))

    stream.write("COLUMNS\n")
    integral = False
    for var in model.variables:
        wants_integral = var.vtype.value in ("binary", "integer")
        if wants_integral != integral:
            marker = "INTORG" if wants_integral else "INTEND"
            stream.write(f"    MARKER    'MARKER'    '{marker}'\n")
            integral = wants_integral
        for row, coeff in entries[var]:
            stream.write(f"    {name_of[var]}  {row}  {coeff:.17g}\n")
        if not entries[var]:
            # A variable with no nonzeros still needs a column record so
            # readers (including ours) learn it exists.
            stream.write(f"    {name_of[var]}  {_OBJECTIVE_ROW}  0\n")
    if integral:
        stream.write("    MARKER    'MARKER'    'INTEND'\n")

    stream.write("RHS\n")
    for name, constraint in zip(row_names, model.constraints):
        rhs = constraint.rhs + 0.0  # normalize -0.0
        if rhs:
            stream.write(f"    RHS  {name}  {rhs:.17g}\n")
    if model.objective.constant:
        # MPS convention: an RHS entry on the objective row is the
        # *negated* objective constant.
        stream.write(f"    RHS  {_OBJECTIVE_ROW}  {-model.objective.constant:.17g}\n")

    stream.write("BOUNDS\n")
    for var in model.variables:
        name = name_of[var]
        lb, ub = var.lb, var.ub
        if lb == ub:
            stream.write(f" FX BND  {name}  {lb:.17g}\n")
        elif math.isinf(lb) and math.isinf(ub):
            stream.write(f" FR BND  {name}\n")
        else:
            # Explicit pairs everywhere: MPS readers disagree on the
            # default upper bound of integer columns, so never rely on it.
            if math.isinf(lb):
                stream.write(f" MI BND  {name}\n")
            else:
                stream.write(f" LO BND  {name}  {lb:.17g}\n")
            if not math.isinf(ub):
                stream.write(f" UP BND  {name}  {ub:.17g}\n")
    stream.write("ENDATA\n")


def mps_string(model: Model) -> str:
    """The MPS-format text of a model."""
    buffer = io.StringIO()
    write_mps(model, buffer)
    return buffer.getvalue()


def read_mps(text: str) -> Model:
    """Parse free-format MPS text into a :class:`Model`.

    Supports the subset the writer emits: one ``N`` row, ``L``/``G``/``E``
    rows, integrality markers, ``RHS``, and ``LO``/``UP``/``FX``/``FR``/
    ``MI``/``PL``/``BV`` bounds.  ``RANGES`` is rejected.

    Raises:
        ModelError: On malformed or unsupported input.
    """
    objective_row = None
    row_sense: Dict[str, Sense] = {}
    row_order: List[str] = []
    columns: Dict[str, List[Tuple[str, float]]] = {}
    column_order: List[str] = []
    integral: Dict[str, bool] = {}
    rhs: Dict[str, float] = {}
    bounds: List[Tuple[str, str, float]] = []

    section = None
    in_integral = False
    for raw in text.splitlines():
        line = raw.split("*")[0].rstrip()
        if not line.strip():
            continue
        if not line[0].isspace():
            tokens = line.split()
            section = tokens[0].upper()
            if section == "ENDATA":
                break
            if section == "RANGES":
                raise ModelError("MPS RANGES section is not supported")
            if section not in ("NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "OBJSENSE"):
                raise ModelError(f"unsupported MPS section: {section!r}")
            continue
        tokens = line.split()
        if section == "ROWS":
            if len(tokens) != 2:
                raise ModelError(f"malformed ROWS line: {line!r}")
            kind, name = tokens[0].upper(), tokens[1]
            if kind == "N":
                if objective_row is None:
                    objective_row = name
                continue
            if kind not in _SENSE_OF:
                raise ModelError(f"unknown row type {kind!r} in {line!r}")
            row_sense[name] = _SENSE_OF[kind]
            row_order.append(name)
        elif section == "COLUMNS":
            if "'MARKER'" in tokens:
                in_integral = "'INTORG'" in tokens
                continue
            if len(tokens) not in (3, 5):
                raise ModelError(f"malformed COLUMNS line: {line!r}")
            name = tokens[0]
            if name not in columns:
                columns[name] = []
                column_order.append(name)
                integral[name] = in_integral
            for row, value in zip(tokens[1::2], tokens[2::2]):
                columns[name].append((row, float(value)))
        elif section == "RHS":
            if len(tokens) not in (3, 5):
                raise ModelError(f"malformed RHS line: {line!r}")
            for row, value in zip(tokens[1::2], tokens[2::2]):
                rhs[row] = float(value)
        elif section == "BOUNDS":
            kind = tokens[0].upper()
            if kind in ("FR", "MI", "PL", "BV") and len(tokens) == 3:
                bounds.append((kind, tokens[2], 0.0))
            elif kind in ("LO", "UP", "FX") and len(tokens) == 4:
                bounds.append((kind, tokens[2], float(tokens[3])))
            else:
                raise ModelError(f"unsupported bound line: {line!r}")
        elif section in ("NAME", "OBJSENSE"):
            continue
        elif section is None:
            raise ModelError(f"MPS data before any section header: {line!r}")

    if objective_row is None:
        raise ModelError("MPS text has no objective (N) row")

    model = Model("from_mps")
    variables = {name: model.add_var(name) for name in column_order}
    for name, var in variables.items():
        if integral[name]:
            var.vtype = VarType.INTEGER

    objective = LinExpr()
    row_exprs: Dict[str, LinExpr] = {name: LinExpr() for name in row_order}
    for name, records in columns.items():
        var = variables[name]
        for row, value in records:
            if row == objective_row:
                objective = objective + value * var
            elif row in row_exprs:
                row_exprs[row] = row_exprs[row] + value * var
            else:
                raise ModelError(f"column entry for unknown row {row!r}")
    objective.constant = -rhs.pop(objective_row, 0.0)

    for row in rhs:
        if row not in row_exprs:
            raise ModelError(f"RHS entry for unknown row {row!r}")
    for name in row_order:
        model.add(
            Constraint(row_exprs[name], row_sense[name], rhs.get(name, 0.0)),
            name=name,
        )
    model.minimize(objective)

    for kind, name, value in bounds:
        var = variables.get(name)
        if var is None:
            raise ModelError(f"bound for unknown column {name!r}")
        if kind == "LO":
            var.lb = value
        elif kind == "UP":
            var.ub = value
            if value < 0 and var.lb == 0.0:
                # Historical MPS quirk: a negative UP with default LO
                # frees the lower bound.
                var.lb = -math.inf
        elif kind == "FX":
            var.lb = var.ub = value
        elif kind == "FR":
            var.lb, var.ub = -math.inf, math.inf
        elif kind == "MI":
            var.lb = -math.inf
        elif kind == "PL":
            var.ub = math.inf
        elif kind == "BV":
            var.vtype = VarType.BINARY
            var.lb, var.ub = 0.0, 1.0

    # Integer columns on [0, 1] are binaries for modeling purposes.
    for var in model.variables:
        if var.vtype is VarType.INTEGER and var.lb == 0.0 and var.ub == 1.0:
            var.vtype = VarType.BINARY
    return model
