"""A from-scratch MILP modeling layer (variables, expressions, models).

This is the reproduction's stand-in for the matrix generators the SOS
authors wrote by hand for Bozo/XLP: a small, typed modeling API in the
spirit of PuLP, consumed by the solver backends in :mod:`repro.solvers`.
"""

from repro.milp.constraint import Constraint, Sense
from repro.milp.expr import INTEGRALITY_TOLERANCE, LinExpr, Var, VarType
from repro.milp.lpreader import read_lp
from repro.milp.lpwriter import lp_string, write_lp
from repro.milp.model import MatrixForm, Model, ModelStats
from repro.milp.mps import mps_string, read_mps, write_mps
from repro.milp.solution import Solution, SolveStats, SolveStatus

__all__ = [
    "Constraint",
    "Sense",
    "INTEGRALITY_TOLERANCE",
    "LinExpr",
    "Var",
    "VarType",
    "read_lp",
    "lp_string",
    "write_lp",
    "read_mps",
    "mps_string",
    "write_mps",
    "MatrixForm",
    "Model",
    "ModelStats",
    "Solution",
    "SolveStats",
    "SolveStatus",
]
