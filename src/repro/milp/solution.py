"""Solution and status objects shared by every solver backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.milp.expr import INTEGRALITY_TOLERANCE, Var


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: A feasible incumbent exists but optimality was not proven (time limit).
    FEASIBLE = "feasible"
    #: No conclusion (time limit before any incumbent, numerical failure, ...).
    UNKNOWN = "unknown"

    @property
    def has_solution(self) -> bool:
        """True when variable values are available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """Result of solving a model.

    Attributes:
        status: Solve outcome.
        objective: Objective value of the returned assignment (``nan`` when
            no assignment is available).
        values: Variable assignment, keyed by :class:`Var`.
        best_bound: Best proven dual bound (equals ``objective`` at optimality).
        iterations: Simplex iterations (LP) or B&B nodes processed (MILP).
        solve_seconds: Wall-clock time spent in the solver.
        solver_name: Which backend produced this solution.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Dict[Var, float] = field(default_factory=dict)
    best_bound: float = float("nan")
    iterations: int = 0
    solve_seconds: float = 0.0
    solver_name: str = ""

    def value(self, var: Var) -> float:
        """Value of one variable in this solution."""
        return self.values[var]

    def rounded_value(self, var: Var) -> float:
        """Value with integral variables snapped to the nearest integer.

        Solvers return values like ``0.9999999997`` for binaries; schedule
        extraction uses this accessor so downstream logic sees clean 0/1.
        """
        value = self.values[var]
        if var.is_integral and abs(value - round(value)) <= 1e-4:
            return float(round(value))
        return value

    def is_integral(self, tol: float = INTEGRALITY_TOLERANCE) -> bool:
        """True when every integral variable takes an integer value."""
        return all(
            abs(value - round(value)) <= tol
            for var, value in self.values.items()
            if var.is_integral
        )

    @property
    def gap(self) -> float:
        """Relative optimality gap between incumbent and bound (0 at optimality)."""
        import math

        if math.isnan(self.objective) or math.isnan(self.best_bound):
            return float("inf")
        denom = max(1.0, abs(self.objective))
        return abs(self.objective - self.best_bound) / denom

    def as_name_dict(self) -> Dict[str, float]:
        """Values keyed by variable name (for serialization / debugging)."""
        return {var.name: value for var, value in self.values.items()}


def merge_values(*assignments: Mapping[Var, float]) -> Dict[Var, float]:
    """Merge several partial assignments (later ones win)."""
    merged: Dict[Var, float] = {}
    for assignment in assignments:
        merged.update(assignment)
    return merged
