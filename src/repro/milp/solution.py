"""Solution, status, and solver-telemetry objects shared by every backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.milp.expr import INTEGRALITY_TOLERANCE, Var


def root_gap_closed(bound_before: float, bound_after: float) -> float:
    """Relative root-bound improvement from a cut loop.

    The one formula shared by the solver (when it fills
    ``SolveStats.root_gap_closed``) and trace replay (when it re-derives
    the field from ``cut_round`` events) — keeping it in one place is what
    makes the replay bit-exact.
    """
    import math

    if not (math.isfinite(bound_before) and math.isfinite(bound_after)):
        return 0.0
    return (bound_after - bound_before) / max(1.0, abs(bound_before))


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: A feasible incumbent exists but optimality was not proven (time limit).
    FEASIBLE = "feasible"
    #: No conclusion (time limit before any incumbent, numerical failure, ...).
    UNKNOWN = "unknown"

    @property
    def has_solution(self) -> bool:
        """True when variable values are available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveStats:
    """Telemetry of one (or several merged) solver runs.

    Backends populate what they can observe; counters they cannot measure
    stay zero.  Instances add together with :meth:`merge`, so callers like
    the synthesizer can accumulate telemetry across a whole Pareto sweep.

    Attributes:
        nodes: Branch-and-bound nodes processed.
        lp_solves: LP relaxations solved (nodes + dives + root).
        lp_pivots: Total simplex pivots across every LP solve.
        warm_starts: LP solves attempted from an inherited basis.
        warm_start_hits: Warm-started solves that finished on the revised
            path (no dense cold-start fallback needed).
        fallbacks: LP solves that fell back to the dense tableau oracle.
        workers: Parallel workers used (0 for a purely serial run; merged
            records keep the maximum).
        workers_requested: Worker count the caller asked for, before the
            CPU-count clamp (0 when no parallel request was made; merged
            records keep the maximum).  ``workers < workers_requested``
            means the clamp engaged.
        subtrees_dispatched: Branch-and-bound subtrees handed to workers.
        subtrees_stolen: Spilled subtree nodes picked up by a worker other
            than the one that spilled them (fast parallel mode only; the
            deterministic oracle mode never steals).
        worker_idle_waits: Times a pool worker found the shared node queue
            empty while the solve was still running (fast mode's
            starvation signal — spilling is triggered by it).
        incumbent_broadcasts: Times a worker lowered the shared incumbent
            objective that every other worker prunes against.
        seeded_incumbent: 1 when a caller-supplied incumbent seed was
            validated and adopted before the root node, else 0 (merged
            records sum, so a sweep counts its seeded solves).
        rc_fixed_bounds: Integral-variable bounds tightened by
            reduced-cost fixing, accumulated over every re-tightening.
        cuts_added: Cutting planes appended to the root LP across every
            separation round (Gomory + cover).
        cut_rounds: Root separation rounds that actually added cuts and
            re-solved the relaxation.
        strong_branch_probes: Budgeted strong-branching LP probes run at
            the root to initialize pseudocosts.
        bound_flips: Revised-simplex nonbasic bound-to-bound moves
            (dual ratio-test flips plus primal full-box steps) that
            avoided a pivot, summed over every LP solve.
        devex_resets: Devex reference-framework resets across every LP
            solve (zero under ``pricing="dantzig"``).
        ftran_sparsity: Entering-column FTRAN results whose nonzero count
            stayed at or below half the basis rows — the hypersparse
            regime — summed over every LP solve.
        refactorizations: Basis factorizations rebuilt from scratch
            across every LP solve (cold starts, cadence/fill policy, and
            drift recoveries).
        root_gap_closed: Relative root-bound improvement from the cut
            loop, ``(bound_after - bound_before) / max(1, |bound_before|)``
            over the first and last separation round (see
            :func:`root_gap_closed`); ``0.0`` when no cuts were added.
            Merged records sum, like every other counter.
        phase_seconds: Wall-clock seconds per named phase (``"presolve"``,
            ``"lp"``, ``"search"``, ``"build"``, ...).  In a parallel run
            the per-phase totals are summed over all workers, so they can
            legitimately exceed the wall-clock ``solve_seconds``.
    """

    nodes: int = 0
    lp_solves: int = 0
    lp_pivots: int = 0
    warm_starts: int = 0
    warm_start_hits: int = 0
    fallbacks: int = 0
    workers: int = 0
    workers_requested: int = 0
    subtrees_dispatched: int = 0
    subtrees_stolen: int = 0
    worker_idle_waits: int = 0
    incumbent_broadcasts: int = 0
    seeded_incumbent: int = 0
    rc_fixed_bounds: int = 0
    cuts_added: int = 0
    cut_rounds: int = 0
    strong_branch_probes: int = 0
    bound_flips: int = 0
    devex_resets: int = 0
    ftran_sparsity: int = 0
    refactorizations: int = 0
    root_gap_closed: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def warm_start_hit_rate(self) -> float:
        """Fraction of warm-start attempts that avoided a cold fallback."""
        if not self.warm_starts:
            return 0.0
        return self.warm_start_hits / self.warm_starts

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time into a named phase."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def merge(self, other: "SolveStats") -> "SolveStats":
        """Accumulate another run's counters into this record (returns self)."""
        self.nodes += other.nodes
        self.lp_solves += other.lp_solves
        self.lp_pivots += other.lp_pivots
        self.warm_starts += other.warm_starts
        self.warm_start_hits += other.warm_start_hits
        self.fallbacks += other.fallbacks
        self.workers = max(self.workers, other.workers)
        self.workers_requested = max(self.workers_requested, other.workers_requested)
        self.subtrees_dispatched += other.subtrees_dispatched
        self.subtrees_stolen += other.subtrees_stolen
        self.worker_idle_waits += other.worker_idle_waits
        self.incumbent_broadcasts += other.incumbent_broadcasts
        self.seeded_incumbent += other.seeded_incumbent
        self.rc_fixed_bounds += other.rc_fixed_bounds
        self.cuts_added += other.cuts_added
        self.cut_rounds += other.cut_rounds
        self.strong_branch_probes += other.strong_branch_probes
        self.bound_flips += other.bound_flips
        self.devex_resets += other.devex_resets
        self.ftran_sparsity += other.ftran_sparsity
        self.refactorizations += other.refactorizations
        self.root_gap_closed += other.root_gap_closed
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)
        return self

    def as_dict(self) -> Dict[str, object]:
        """JSON-compatible mapping of every counter (phases under ``phase_seconds``)."""
        return {
            "nodes": self.nodes,
            "lp_solves": self.lp_solves,
            "lp_pivots": self.lp_pivots,
            "warm_starts": self.warm_starts,
            "warm_start_hits": self.warm_start_hits,
            "fallbacks": self.fallbacks,
            "workers": self.workers,
            "workers_requested": self.workers_requested,
            "subtrees_dispatched": self.subtrees_dispatched,
            "subtrees_stolen": self.subtrees_stolen,
            "worker_idle_waits": self.worker_idle_waits,
            "incumbent_broadcasts": self.incumbent_broadcasts,
            "seeded_incumbent": self.seeded_incumbent,
            "rc_fixed_bounds": self.rc_fixed_bounds,
            "cuts_added": self.cuts_added,
            "cut_rounds": self.cut_rounds,
            "strong_branch_probes": self.strong_branch_probes,
            "bound_flips": self.bound_flips,
            "devex_resets": self.devex_resets,
            "ftran_sparsity": self.ftran_sparsity,
            "refactorizations": self.refactorizations,
            "root_gap_closed": self.root_gap_closed,
            "phase_seconds": dict(self.phase_seconds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolveStats":
        """Rebuild a record from :meth:`as_dict` output (inverse round trip).

        Unknown keys are ignored and missing counters default to zero, so
        documents written by older or newer versions both load.
        """
        stats = cls()
        for name in (
            "nodes", "lp_solves", "lp_pivots", "warm_starts",
            "warm_start_hits", "fallbacks", "workers", "workers_requested",
            "subtrees_dispatched", "subtrees_stolen", "worker_idle_waits",
            "incumbent_broadcasts", "seeded_incumbent", "rc_fixed_bounds",
            "cuts_added", "cut_rounds", "strong_branch_probes",
            "bound_flips", "devex_resets", "ftran_sparsity",
            "refactorizations",
        ):
            setattr(stats, name, int(data.get(name, 0)))
        stats.root_gap_closed = float(data.get("root_gap_closed", 0.0))
        phases = data.get("phase_seconds") or {}
        stats.phase_seconds = {
            str(name): float(seconds) for name, seconds in phases.items()
        }
        return stats

    def summary(self) -> str:
        """One-line human-readable telemetry summary."""
        parts = [
            f"nodes={self.nodes}",
            f"lp_solves={self.lp_solves}",
            f"pivots={self.lp_pivots}",
        ]
        if self.warm_starts:
            parts.append(
                f"warm-start hit rate {self.warm_start_hit_rate:.0%} "
                f"({self.warm_start_hits}/{self.warm_starts})"
            )
        if self.fallbacks:
            parts.append(f"fallbacks={self.fallbacks}")
        if self.seeded_incumbent:
            parts.append("seeded")
        if self.rc_fixed_bounds:
            parts.append(f"rc_fixed={self.rc_fixed_bounds}")
        if self.cuts_added:
            parts.append(
                f"cuts={self.cuts_added} ({self.cut_rounds} rounds, "
                f"gap closed {self.root_gap_closed:.1%})"
            )
        if self.strong_branch_probes:
            parts.append(f"sb_probes={self.strong_branch_probes}")
        if self.workers:
            parts.append(
                f"workers={self.workers}"
                f" subtrees={self.subtrees_dispatched}"
                f" broadcasts={self.incumbent_broadcasts}"
            )
        if self.subtrees_stolen:
            parts.append(f"stolen={self.subtrees_stolen}")
        if self.worker_idle_waits:
            parts.append(f"idle_waits={self.worker_idle_waits}")
        if self.workers_requested > max(self.workers, 1):
            parts.append(f"workers_requested={self.workers_requested} (clamped)")
        for name in sorted(self.phase_seconds):
            parts.append(f"{name}={self.phase_seconds[name]:.3f}s")
        return ", ".join(parts)


@dataclass
class Solution:
    """Result of solving a model.

    Attributes:
        status: Solve outcome.
        objective: Objective value of the returned assignment (``nan`` when
            no assignment is available).
        values: Variable assignment, keyed by :class:`Var`.
        best_bound: Best proven dual bound (equals ``objective`` at optimality).
        iterations: Simplex iterations (LP) or B&B nodes processed (MILP).
        solve_seconds: Wall-clock time spent in the solver.
        solver_name: Which backend produced this solution.
        stats: Solver telemetry (:class:`SolveStats`); ``None`` only for
            solutions constructed outside a backend (e.g. loaded from disk).
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Dict[Var, float] = field(default_factory=dict)
    best_bound: float = float("nan")
    iterations: int = 0
    solve_seconds: float = 0.0
    solver_name: str = ""
    stats: Optional[SolveStats] = None

    def value(self, var: Var) -> float:
        """Value of one variable in this solution."""
        return self.values[var]

    def rounded_value(self, var: Var) -> float:
        """Value with integral variables snapped to the nearest integer.

        Solvers return values like ``0.9999999997`` for binaries; schedule
        extraction uses this accessor so downstream logic sees clean 0/1.
        """
        value = self.values[var]
        if var.is_integral and abs(value - round(value)) <= 1e-4:
            return float(round(value))
        return value

    def is_integral(self, tol: float = INTEGRALITY_TOLERANCE) -> bool:
        """True when every integral variable takes an integer value."""
        return all(
            abs(value - round(value)) <= tol
            for var, value in self.values.items()
            if var.is_integral
        )

    @property
    def gap(self) -> float:
        """Relative optimality gap between incumbent and bound (0 at optimality)."""
        import math

        if math.isnan(self.objective) or math.isnan(self.best_bound):
            return float("inf")
        denom = max(1.0, abs(self.objective))
        return abs(self.objective - self.best_bound) / denom

    def as_name_dict(self) -> Dict[str, float]:
        """Values keyed by variable name (for serialization / debugging)."""
        return {var.name: value for var, value in self.values.items()}


def merge_values(*assignments: Mapping[Var, float]) -> Dict[Var, float]:
    """Merge several partial assignments (later ones win)."""
    merged: Dict[Var, float] = {}
    for assignment in assignments:
        merged.update(assignment)
    return merged
