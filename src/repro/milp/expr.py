"""Linear expressions and decision variables for the MILP modeling layer.

This module provides the two building blocks of every model:

* :class:`Var` — a named decision variable with a domain (continuous,
  integer, or binary) and bounds.
* :class:`LinExpr` — an affine expression ``sum(coeff * var) + constant``
  supporting natural arithmetic (``+``, ``-``, ``*`` by scalars) and
  comparison operators that build :class:`~repro.milp.constraint.Constraint`
  objects.

The design mirrors miniature modeling layers such as PuLP, which the paper's
authors approximated with hand-written matrix generators for Bozo/XLP.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.errors import ModelError

Number = Union[int, float]

#: Variables with |value - round(value)| below this are considered integral.
INTEGRALITY_TOLERANCE = 1e-6


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Var:
    """A single decision variable.

    Variables are created through :meth:`repro.milp.model.Model.add_var`
    (which assigns the ``index``); constructing one directly is only useful
    in tests.

    Attributes:
        name: Unique (per model) human-readable identifier.
        vtype: Domain of the variable.
        lb: Lower bound (``-inf`` allowed for continuous variables).
        ub: Upper bound (``+inf`` allowed).
        index: Column index inside the owning model, assigned by the model.
    """

    __slots__ = ("name", "vtype", "lb", "ub", "index")

    def __init__(
        self,
        name: str,
        vtype: VarType = VarType.CONTINUOUS,
        lb: Number = 0.0,
        ub: Number = math.inf,
        index: int = -1,
    ) -> None:
        if vtype is VarType.BINARY:
            lb, ub = 0.0, 1.0
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} exceeds upper bound {ub}")
        self.name = name
        self.vtype = vtype
        self.lb = float(lb)
        self.ub = float(ub)
        self.index = index

    @property
    def is_integral(self) -> bool:
        """True for binary and general-integer variables."""
        return self.vtype is not VarType.CONTINUOUS

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object):  # type: ignore[override]
        # Equality against expressions builds a constraint; identity otherwise.
        if isinstance(other, (Var, LinExpr, int, float)):
            return LinExpr.from_term(self).__eq__(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.vtype.value}, [{self.lb}, {self.ub}])"

    # -- arithmetic: delegate to LinExpr ------------------------------------
    def __add__(self, other):
        return LinExpr.from_term(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        return LinExpr.from_term(self) - other

    def __rsub__(self, other):
        return (-LinExpr.from_term(self)) + other

    def __mul__(self, other):
        return LinExpr.from_term(self) * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return LinExpr.from_term(self) / other

    def __neg__(self):
        return LinExpr.from_term(self, coeff=-1.0)

    def __le__(self, other):
        return LinExpr.from_term(self) <= other

    def __ge__(self, other):
        return LinExpr.from_term(self) >= other


class LinExpr:
    """An affine expression ``sum_i coeffs[v_i] * v_i + constant``.

    Instances are immutable from the caller's point of view: every
    arithmetic operation returns a new expression.  Terms with coefficient
    exactly ``0.0`` are dropped eagerly so expressions stay sparse.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[Var, Number] | None = None, constant: Number = 0.0) -> None:
        self.coeffs: Dict[Var, float] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                if not isinstance(var, Var):
                    raise ModelError(f"LinExpr term key must be a Var, got {type(var).__name__}")
                value = float(coeff)
                if value != 0.0:
                    self.coeffs[var] = value
        self.constant = float(constant)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_term(cls, var: Var, coeff: Number = 1.0) -> "LinExpr":
        """Build the expression ``coeff * var``."""
        return cls({var: coeff})

    @classmethod
    def sum(cls, terms: Iterable[Union["LinExpr", Var, Number]]) -> "LinExpr":
        """Sum an iterable of expressions, variables, and scalars.

        Faster and clearer than ``functools.reduce(operator.add, ...)`` for
        the long sums that constraint generators produce.
        """
        result = cls()
        for term in terms:
            result._iadd(term)
        return result

    # -- inspection ----------------------------------------------------------
    def variables(self) -> Tuple[Var, ...]:
        """The variables appearing with nonzero coefficient."""
        return tuple(self.coeffs)

    def coefficient(self, var: Var) -> float:
        """Coefficient of ``var`` (0.0 if absent)."""
        return self.coeffs.get(var, 0.0)

    def is_constant(self) -> bool:
        """True when no variable appears."""
        return not self.coeffs

    def evaluate(self, values: Mapping[Var, Number]) -> float:
        """Value of the expression under a variable assignment.

        Args:
            values: Mapping from every variable in the expression to a value.

        Raises:
            ModelError: If a variable has no value in ``values``.
        """
        total = self.constant
        for var, coeff in self.coeffs.items():
            if var not in values:
                raise ModelError(f"no value supplied for variable {var.name!r}")
            total += coeff * float(values[var])
        return total

    def copy(self) -> "LinExpr":
        """An independent copy (the term dict is not shared)."""
        fresh = LinExpr()
        fresh.coeffs = dict(self.coeffs)
        fresh.constant = self.constant
        return fresh

    # -- in-place helper (private; used to keep sums O(n)) --------------------
    def _iadd(self, other: Union["LinExpr", Var, Number], sign: float = 1.0) -> "LinExpr":
        if isinstance(other, LinExpr):
            for var, coeff in other.coeffs.items():
                updated = self.coeffs.get(var, 0.0) + sign * coeff
                if updated == 0.0:
                    self.coeffs.pop(var, None)
                else:
                    self.coeffs[var] = updated
            self.constant += sign * other.constant
        elif isinstance(other, Var):
            updated = self.coeffs.get(other, 0.0) + sign
            if updated == 0.0:
                self.coeffs.pop(other, None)
            else:
                self.coeffs[other] = updated
        elif isinstance(other, (int, float)):
            self.constant += sign * float(other)
        else:
            raise ModelError(f"cannot add {type(other).__name__} to a linear expression")
        return self

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other):
        return self.copy()._iadd(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self.copy()._iadd(other, sign=-1.0)

    def __rsub__(self, other):
        return (-self).__add__(other)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise ModelError("a linear expression can only be multiplied by a scalar "
                             "(products of variables must be linearized explicitly)")
        if scalar == 0:
            return LinExpr()
        result = LinExpr()
        result.coeffs = {var: coeff * float(scalar) for var, coeff in self.coeffs.items()}
        result.constant = self.constant * float(scalar)
        return result

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise ModelError("a linear expression can only be divided by a scalar")
        if scalar == 0:
            raise ZeroDivisionError("division of a linear expression by zero")
        return self * (1.0 / scalar)

    def __neg__(self):
        return self * -1.0

    # -- comparisons build constraints -----------------------------------------
    def __le__(self, other):
        from repro.milp.constraint import Constraint, Sense

        return Constraint._from_comparison(self, other, Sense.LE)

    def __ge__(self, other):
        from repro.milp.constraint import Constraint, Sense

        return Constraint._from_comparison(self, other, Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from repro.milp.constraint import Constraint, Sense

        if isinstance(other, (LinExpr, Var, int, float)):
            return Constraint._from_comparison(self, other, Sense.EQ)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # expressions are not hashable

    def __repr__(self) -> str:
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.coeffs.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"
