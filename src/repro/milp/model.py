"""The MILP model container.

A :class:`Model` owns variables, constraints, and an objective.  It knows
nothing about *how* to solve itself; solver backends (see
:mod:`repro.solvers`) consume the matrix form produced by
:meth:`Model.to_matrices`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.milp.constraint import Constraint, Sense, validate_constraint
from repro.milp.expr import LinExpr, Number, Var, VarType


@dataclass(frozen=True)
class ModelStats:
    """Size statistics of a model (reported alongside the paper's counts)."""

    num_variables: int
    num_continuous: int
    num_binary: int
    num_integer: int
    num_constraints: int
    num_nonzeros: int

    def __str__(self) -> str:
        return (
            f"{self.num_variables} variables "
            f"({self.num_continuous} continuous, {self.num_binary} binary, "
            f"{self.num_integer} integer), "
            f"{self.num_constraints} constraints, {self.num_nonzeros} nonzeros"
        )


@dataclass
class MatrixForm:
    """Dense matrix encoding of a model, consumed by solver backends.

    The encoding is ``minimize c @ x + c0`` subject to
    ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq``, ``lb <= x <= ub``, with
    ``integrality[j]`` true for integral columns.  Row order within each
    block matches constraint insertion order.
    """

    c: np.ndarray
    c0: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    variables: Tuple[Var, ...]


class Model:
    """A mixed integer-linear program.

    Example:
        >>> m = Model("tiny")
        >>> x = m.add_var("x", ub=4)
        >>> y = m.add_var("y", vtype=VarType.BINARY)
        >>> _ = m.add(x + 2 * y <= 5, name="cap")
        >>> m.minimize(-x - y)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: List[Var] = []
        self._names: Dict[str, Var] = {}
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._constraint_counter = 0

    # -- variables ------------------------------------------------------------
    def add_var(
        self,
        name: str,
        vtype: VarType = VarType.CONTINUOUS,
        lb: Number = 0.0,
        ub: Number = math.inf,
    ) -> Var:
        """Create a variable owned by this model.

        Args:
            name: Unique name; duplicates raise :class:`ModelError`.
            vtype: Variable domain.
            lb: Lower bound (ignored for binaries, which are always [0, 1]).
            ub: Upper bound (ignored for binaries).

        Returns:
            The created :class:`Var`.
        """
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r} in model {self.name!r}")
        var = Var(name, vtype=vtype, lb=lb, ub=ub, index=len(self._variables))
        self._variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: str) -> Var:
        """Shorthand for a binary variable."""
        return self.add_var(name, vtype=VarType.BINARY)

    def add_continuous(self, name: str, lb: Number = 0.0, ub: Number = math.inf) -> Var:
        """Shorthand for a continuous variable."""
        return self.add_var(name, vtype=VarType.CONTINUOUS, lb=lb, ub=ub)

    def var_by_name(self, name: str) -> Var:
        """Look up a variable by its name."""
        try:
            return self._names[name]
        except KeyError:
            raise ModelError(f"no variable named {name!r} in model {self.name!r}") from None

    @property
    def variables(self) -> Tuple[Var, ...]:
        return tuple(self._variables)

    # -- constraints ------------------------------------------------------------
    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint (validating it is one, not a chained-comparison bool)."""
        constraint = validate_constraint(constraint)
        for var in constraint.expr.variables():
            if var.index < 0 or var.index >= len(self._variables) or self._variables[var.index] is not var:
                raise ModelError(
                    f"constraint uses variable {var.name!r} that does not belong to model {self.name!r}"
                )
        if not name:
            name = f"c{self._constraint_counter}"
        self._constraint_counter += 1
        constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def add_all(self, constraints: Iterable[Constraint], prefix: str = "") -> List[Constraint]:
        """Add several constraints, optionally named ``prefix0, prefix1, ...``."""
        added = []
        for offset, constraint in enumerate(constraints):
            name = f"{prefix}{offset}" if prefix else ""
            added.append(self.add(constraint, name=name))
        return added

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    # -- objective ------------------------------------------------------------
    def minimize(self, expr: LinExpr | Var | Number) -> None:
        """Set a minimization objective."""
        self._objective = LinExpr() + expr

    def maximize(self, expr: LinExpr | Var | Number) -> None:
        """Set a maximization objective (stored negated; models always minimize)."""
        self._objective = -(LinExpr() + expr)

    @property
    def objective(self) -> LinExpr:
        """The (minimization) objective expression."""
        return self._objective

    # -- inspection ------------------------------------------------------------
    def stats(self) -> ModelStats:
        """Size statistics (variable/constraint/nonzero counts)."""
        num_binary = sum(1 for v in self._variables if v.vtype is VarType.BINARY)
        num_integer = sum(1 for v in self._variables if v.vtype is VarType.INTEGER)
        num_continuous = len(self._variables) - num_binary - num_integer
        nonzeros = sum(len(c.expr.coeffs) for c in self._constraints)
        return ModelStats(
            num_variables=len(self._variables),
            num_continuous=num_continuous,
            num_binary=num_binary,
            num_integer=num_integer,
            num_constraints=len(self._constraints),
            num_nonzeros=nonzeros,
        )

    def is_feasible(self, values: Mapping[Var, Number], tol: float = 1e-6) -> bool:
        """Check a full assignment against bounds, integrality, and constraints."""
        return not self.infeasibilities(values, tol=tol)

    def infeasibilities(self, values: Mapping[Var, Number], tol: float = 1e-6) -> List[str]:
        """Human-readable list of everything an assignment violates."""
        problems: List[str] = []
        for var in self._variables:
            if var not in values:
                problems.append(f"variable {var.name} has no value")
                continue
            value = float(values[var])
            if value < var.lb - tol or value > var.ub + tol:
                problems.append(f"variable {var.name}={value:g} outside [{var.lb:g}, {var.ub:g}]")
            if var.is_integral and abs(value - round(value)) > 1e-4:
                problems.append(f"variable {var.name}={value:g} not integral")
        for constraint in self._constraints:
            try:
                if not constraint.is_satisfied(values, tol=tol):
                    problems.append(
                        f"constraint {constraint.name}: "
                        f"{constraint.expr.evaluate(values):g} {constraint.sense.value} "
                        f"{constraint.rhs:g} violated"
                    )
            except ModelError as exc:
                problems.append(str(exc))
        return problems

    def objective_value(self, values: Mapping[Var, Number]) -> float:
        """Objective under an assignment."""
        return self._objective.evaluate(values)

    # -- matrix export ------------------------------------------------------------
    def to_matrices(self) -> MatrixForm:
        """Dense matrix form for solver backends.

        ``GE`` rows are negated into ``LE`` rows; ``EQ`` rows go to the
        equality block.  Column order is variable insertion order.
        """
        n = len(self._variables)
        index_of = {var: j for j, var in enumerate(self._variables)}

        c = np.zeros(n)
        for var, coeff in self._objective.coeffs.items():
            c[index_of[var]] = coeff

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for constraint in self._constraints:
            row = np.zeros(n)
            for var, coeff in constraint.expr.coeffs.items():
                row[index_of[var]] = coeff
            if constraint.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)

        def stack(rows: List[np.ndarray]) -> np.ndarray:
            return np.vstack(rows) if rows else np.zeros((0, n))

        return MatrixForm(
            c=c,
            c0=self._objective.constant,
            a_ub=stack(ub_rows),
            b_ub=np.asarray(ub_rhs, dtype=float),
            a_eq=stack(eq_rows),
            b_eq=np.asarray(eq_rhs, dtype=float),
            lb=np.asarray([v.lb for v in self._variables]),
            ub=np.asarray([v.ub for v in self._variables]),
            integrality=np.asarray([v.is_integral for v in self._variables], dtype=bool),
            variables=self.variables,
        )

    # -- derivation --------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Model":
        """A deep, independent copy (fresh Var objects, same structure)."""
        clone = Model(name or self.name)
        mapping: Dict[Var, Var] = {}
        for var in self._variables:
            mapping[var] = clone.add_var(var.name, var.vtype, var.lb, var.ub)
        for constraint in self._constraints:
            expr = LinExpr({mapping[v]: c for v, c in constraint.expr.coeffs.items()})
            clone.add(Constraint(expr, constraint.sense, constraint.rhs),
                      name=constraint.name)
        clone._objective = LinExpr(
            {mapping[v]: c for v, c in self._objective.coeffs.items()},
            self._objective.constant,
        )
        return clone

    def relaxed(self, name: Optional[str] = None) -> "Model":
        """The LP relaxation: a copy with every variable made continuous.

        Binaries keep their [0, 1] box; general integers keep their bounds.
        The relaxation's optimum lower-bounds the MILP's — the quantity
        branch and bound prunes with.
        """
        clone = self.copy(name or f"{self.name}_lp")
        for var in clone._variables:
            if var.vtype is not VarType.CONTINUOUS:
                var.vtype = VarType.CONTINUOUS
        return clone

    def __repr__(self) -> str:
        return f"Model({self.name!r}: {self.stats()})"
