"""CPLEX-LP-format writer.

The paper's toolchain handed matrix files to XLP; we provide the modern
equivalent — an LP-file export — so models can be inspected by hand or fed
to external solvers for cross-checking.
"""

from __future__ import annotations

import io
import math
import re
from typing import TextIO

from repro.milp.constraint import Sense
from repro.milp.expr import LinExpr
from repro.milp.model import Model

_NAME_SANITIZER = re.compile(r"[^A-Za-z0-9_.]")


def _sanitize(name: str) -> str:
    """Make a variable/constraint name legal in LP format."""
    clean = _NAME_SANITIZER.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "v_" + clean
    return clean


def _format_expr(expr: LinExpr, name_of: dict) -> str:
    parts = []
    for var, coeff in sorted(expr.coeffs.items(), key=lambda item: item[0].index):
        sign = "+" if coeff >= 0 else "-"
        magnitude = abs(coeff)
        if parts or sign == "-":
            parts.append(sign)
        if magnitude == 1.0:
            parts.append(name_of[var])
        else:
            parts.append(f"{magnitude:.17g} {name_of[var]}")
    if not parts:
        parts.append("0")
    return " ".join(parts)


def write_lp(model: Model, stream: TextIO) -> None:
    """Write ``model`` to ``stream`` in CPLEX LP format."""
    name_of = {var: _sanitize(var.name) for var in model.variables}
    if len(set(name_of.values())) != len(name_of):
        # Disambiguate collisions introduced by sanitization.
        for var in model.variables:
            name_of[var] = f"{name_of[var]}_{var.index}"

    stream.write(f"\\ Model: {model.name}\n")
    stream.write("Minimize\n")
    stream.write(f" obj: {_format_expr(model.objective, name_of)}\n")

    stream.write("Subject To\n")
    for constraint in model.constraints:
        sense = {"<=": "<=", ">=": ">=", "=": "="}[constraint.sense.value]
        rhs = constraint.rhs + 0.0  # normalize -0.0 to 0.0
        stream.write(
            f" {_sanitize(constraint.name)}: "
            f"{_format_expr(constraint.expr, name_of)} {sense} {rhs:.17g}\n"
        )

    stream.write("Bounds\n")
    for var in model.variables:
        name = name_of[var]
        lb = "-inf" if math.isinf(var.lb) else f"{var.lb:.17g}"
        ub = "+inf" if math.isinf(var.ub) else f"{var.ub:.17g}"
        if var.lb == 0.0 and math.isinf(var.ub):
            continue  # LP default bound
        stream.write(f" {lb} <= {name} <= {ub}\n")

    binaries = [name_of[v] for v in model.variables if v.vtype.value == "binary"]
    integers = [name_of[v] for v in model.variables if v.vtype.value == "integer"]
    if binaries:
        stream.write("Binary\n")
        for name in binaries:
            stream.write(f" {name}\n")
    if integers:
        stream.write("General\n")
        for name in integers:
            stream.write(f" {name}\n")
    stream.write("End\n")


def lp_string(model: Model) -> str:
    """The LP-format text of a model."""
    buffer = io.StringIO()
    write_lp(model, buffer)
    return buffer.getvalue()
