"""Communication-driven clustering baseline (Sarkar-style edge zeroing).

Another constructive heuristic family from the era the paper surveys:
first decide which subtasks should *never* be separated (clustering), then
assign whole clusters to processors.  Our variant:

1. Start with singleton clusters; walk arcs in decreasing volume and merge
   the endpoint clusters when (a) some processor type can execute the
   merged set and (b) a quick simulation of the cluster-respecting greedy
   assignment does not get worse ("edge zeroing").
2. Assign clusters to concrete instances greedily (cheapest capable
   instance that minimizes the simulated makespan), then simulate the full
   mapping for the final schedule.

Like every baseline here, the result is validator-checked and can never
beat the exact MILP front — which the tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.heuristic_synthesis import architecture_for
from repro.errors import SimulationError, SynthesisError
from repro.sim.simulator import simulate_mapping
from repro.synthesis.design import Design
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


def _types_covering(library: TechnologyLibrary, tasks: Sequence[str]):
    return [
        ptype for ptype in library.types
        if all(ptype.can_execute(task) for task in tasks)
    ]


def cluster_tasks(
    graph: TaskGraph,
    library: TechnologyLibrary,
    max_cluster_size: Optional[int] = None,
) -> List[List[str]]:
    """Edge-zeroing clustering: merge across the heaviest arcs first.

    A merge is accepted only when at least one processor type can run the
    whole merged cluster (otherwise the assignment phase could not place
    it on a single processor).

    Args:
        graph: Task graph to cluster.
        library: Capabilities constraining merges.
        max_cluster_size: Optional hard cap on cluster cardinality.

    Returns:
        Clusters as lists of subtask names (ordering deterministic).
    """
    cluster_of: Dict[str, int] = {
        name: index for index, name in enumerate(graph.subtask_names)
    }
    members: Dict[int, List[str]] = {
        index: [name] for name, index in cluster_of.items()
    }
    arcs = sorted(graph.arcs, key=lambda a: (-a.volume, a.label))
    for arc in arcs:
        first = cluster_of[arc.producer]
        second = cluster_of[arc.consumer]
        if first == second:
            continue
        merged = members[first] + members[second]
        if max_cluster_size is not None and len(merged) > max_cluster_size:
            continue
        if not _types_covering(library, merged):
            continue
        for task in members[second]:
            cluster_of[task] = first
        members[first] = merged
        del members[second]
    ordered = sorted(members.values(), key=lambda group: group[0])
    return ordered


def clustered_design(
    graph: TaskGraph,
    library: TechnologyLibrary,
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT,
    max_cluster_size: Optional[int] = None,
) -> Design:
    """Cluster, assign clusters to instances, simulate, and package.

    Assignment: clusters in decreasing total-work order; each goes to the
    capable instance minimizing the greedy-simulated makespan so far, with
    instance cost as the tiebreak (prefer reusing bought processors).

    Raises:
        SynthesisError: If no capable instance exists for some cluster.
    """
    clusters = cluster_tasks(graph, library, max_cluster_size)
    pool = library.instances()

    def work(group: Sequence[str]) -> float:
        total = 0.0
        for task in group:
            times = [t.execution_time(task) for t in library.capable_types(task)]
            total += sum(times) / len(times)
        return total

    mapping: Dict[str, str] = {}
    bought: set = set()
    for group in sorted(clusters, key=lambda g: -work(g)):
        candidates = [
            inst for inst in pool
            if all(inst.can_execute(task) for task in group)
        ]
        if not candidates:
            raise SynthesisError(f"no instance can host cluster {group}")
        best = None
        for inst in candidates:
            trial = dict(mapping)
            trial.update({task: inst.name for task in group})
            placed = [t for t in graph.topological_order() if t in trial]
            try:
                schedule = simulate_mapping(
                    graph.subgraph(placed), library, trial, style=style
                )
            except SimulationError:
                continue
            extra_cost = 0.0 if inst.name in bought else inst.cost
            key = (schedule.makespan, extra_cost, inst.name)
            if best is None or key < best[0]:
                best = (key, inst)
        if best is None:
            raise SynthesisError(f"cluster {group} could not be simulated anywhere")
        chosen = best[1]
        mapping.update({task: chosen.name for task in group})
        bought.add(chosen.name)

    schedule = simulate_mapping(graph, library, mapping, style=style)
    architecture = architecture_for(schedule, pool, library, style)
    return Design(
        graph=graph,
        library=library,
        style=style,
        architecture=architecture,
        mapping=mapping,
        schedule=schedule,
        makespan=schedule.makespan,
        cost=architecture.total_cost(),
        solver_name="heuristic-clustering",
        proven_optimal=False,
    )
