"""List-scheduling baselines.

§2 positions SOS against the list-scheduling literature (Adam/Chandy/
Dickson's LS comparison, Hwang et al.'s ETF, El-Rewini & Lewis's MH).
These heuristics map a task graph onto a *given* processor set — exactly
the problem SOS subsumes — so they serve as baselines in our benchmark
harness: the exact MILP must never be worse, and the gap quantifies what
exact co-synthesis buys.

Two classic priority schemes are provided:

* :func:`bottom_levels` — HLFET-style static priorities (length of the
  longest remaining path, using mean execution times and remote delays).
* :func:`etf_schedule` — Earliest-Task-First: among ready tasks, place the
  (task, processor) pair that can *start* earliest, breaking ties by
  priority; communication contention is modeled through the shared
  :class:`~repro.sim.simulator.ScheduleBuilder` timelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.schedule.schedule import Schedule
from repro.sim.simulator import ScheduleBuilder
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorInstance
from repro.taskgraph.graph import TaskGraph


def mean_execution_time(graph: TaskGraph, library: TechnologyLibrary, task: str) -> float:
    """Average ``D_PS`` over the capable types (the usual list-scheduling
    estimate when the mapping is not yet known)."""
    times = [ptype.execution_time(task) for ptype in library.capable_types(task)]
    return sum(times) / len(times)


def bottom_levels(graph: TaskGraph, library: TechnologyLibrary) -> Dict[str, float]:
    """HLFET/b-level priorities: longest remaining path to any sink.

    Edge weights use the remote transfer delay (the pessimistic case) and
    node weights the mean execution time.
    """
    levels: Dict[str, float] = {}
    for task in reversed(graph.topological_order()):
        best_tail = 0.0
        for arc in graph.arcs_from(task):
            tail = levels[arc.consumer] + library.transfer_delay(arc.volume, remote=True)
            best_tail = max(best_tail, tail)
        levels[task] = mean_execution_time(graph, library, task) + best_tail
    return levels


def hlfet_schedule(
    graph: TaskGraph,
    library: TechnologyLibrary,
    processors: Sequence[ProcessorInstance],
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT,
) -> Tuple[Dict[str, str], Schedule]:
    """Highest-Level-First list scheduling on a fixed processor set.

    Tasks are taken in decreasing b-level (ties by name); each is placed on
    the capable processor giving the earliest finish time.

    Returns:
        ``(mapping, schedule)``.

    Raises:
        SynthesisError: If some subtask has no capable processor in the set.
    """
    levels = bottom_levels(graph, library)
    order = _priority_topological_order(graph, levels)
    return _place_in_order(graph, library, processors, style, order)


def etf_schedule(
    graph: TaskGraph,
    library: TechnologyLibrary,
    processors: Sequence[ProcessorInstance],
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT,
) -> Tuple[Dict[str, str], Schedule]:
    """Earliest-Task-First scheduling with communication delays.

    At each step, every ready task is probed on every capable processor;
    the pair with the earliest possible start time is committed (ties
    broken by higher b-level, then by name).

    Returns:
        ``(mapping, schedule)``.
    """
    levels = bottom_levels(graph, library)
    builder = ScheduleBuilder(graph, library, style)
    placed: set = set()
    remaining = set(graph.subtask_names)
    while remaining:
        ready = [
            task for task in remaining
            if all(arc.producer in placed for arc in graph.arcs_into(task))
        ]
        if not ready:
            raise SynthesisError("task graph has a cycle (no ready task)")
        best = None
        for task in ready:
            for inst in processors:
                if not inst.can_execute(task):
                    continue
                placement = builder.tentative(task, inst)
                key = (placement.start, -levels[task], task, inst.name)
                if best is None or key < best[0]:
                    best = (key, placement, inst)
        if best is None:
            missing = [t for t in ready if not any(p.can_execute(t) for p in processors)]
            raise SynthesisError(f"no capable processor in the set for {missing}")
        _, placement, inst = best
        builder.commit(builder.tentative(placement.task, inst), inst)
        placed.add(placement.task)
        remaining.remove(placement.task)
    return builder.mapping(), builder.schedule()


def _priority_topological_order(
    graph: TaskGraph, priority: Dict[str, float]
) -> List[str]:
    """Topological order taking the highest-priority ready task first."""
    in_degree = {name: 0 for name in graph.subtask_names}
    for arc in graph.arcs:
        in_degree[arc.consumer] += 1
    ready = [name for name, degree in in_degree.items() if degree == 0]
    order: List[str] = []
    while ready:
        ready.sort(key=lambda name: (-priority[name], name))
        current = ready.pop(0)
        order.append(current)
        for arc in graph.arcs_from(current):
            in_degree[arc.consumer] -= 1
            if in_degree[arc.consumer] == 0:
                ready.append(arc.consumer)
    return order


def _place_in_order(
    graph: TaskGraph,
    library: TechnologyLibrary,
    processors: Sequence[ProcessorInstance],
    style: InterconnectStyle,
    order: Sequence[str],
) -> Tuple[Dict[str, str], Schedule]:
    """Place tasks in a fixed order, each on its earliest-finish processor."""
    builder = ScheduleBuilder(graph, library, style)
    for task in order:
        best = None
        for inst in processors:
            if not inst.can_execute(task):
                continue
            placement = builder.tentative(task, inst)
            key = (placement.end, placement.start, inst.name)
            if best is None or key < best[0]:
                best = (key, placement, inst)
        if best is None:
            raise SynthesisError(f"no capable processor in the set for {task}")
        _, placement, inst = best
        builder.commit(builder.tentative(task, inst), inst)
    return builder.mapping(), builder.schedule()
