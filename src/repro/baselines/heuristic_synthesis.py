"""Heuristic co-synthesis baseline (Talukdar & Mehrotra style).

§2 describes the one prior synthesis effort (Mehrotra & Talukdar 1984):
mathematical formulation, but a *heuristic, iterative* solution that
estimates the execution time for candidate systems.  We reproduce that
spirit as a baseline: enumerate candidate processor allocations, evaluate
each with a fast list scheduler, and keep the non-inferior designs.  The
benchmark harness compares this front against the exact MILP front —
quantifying what formal synthesis buys.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.schedule.schedule import Schedule
from repro.baselines.list_scheduler import etf_schedule, hlfet_schedule
from repro.synthesis.design import Design
from repro.system.architecture import Architecture, Link
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorInstance
from repro.taskgraph.graph import TaskGraph


def architecture_for(
    schedule: Schedule,
    processors: Sequence[ProcessorInstance],
    library: TechnologyLibrary,
    style: InterconnectStyle,
) -> Architecture:
    """Derive the cheapest architecture supporting a heuristic schedule."""
    used_names = set(schedule.processors())
    used = [inst for inst in processors if inst.name in used_names]
    links: List[Link] = []
    if style is not InterconnectStyle.BUS:
        links = [Link(*route) for route in schedule.routes()]
    ring_order: Tuple[str, ...] = ()
    if style is InterconnectStyle.RING:
        ring_order = tuple(inst.name for inst in used)
    return Architecture(
        processors=used, links=links, style=style, library=library, ring_order=ring_order
    )


def evaluate_allocation(
    graph: TaskGraph,
    library: TechnologyLibrary,
    processors: Sequence[ProcessorInstance],
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT,
    scheduler: str = "etf",
) -> Design:
    """Map + schedule the graph on one candidate processor allocation.

    Args:
        scheduler: ``"etf"`` or ``"hlfet"``.

    Returns:
        A :class:`Design` (marked non-optimal) with derived cost/makespan.
    """
    if scheduler == "etf":
        mapping, schedule = etf_schedule(graph, library, processors, style)
    elif scheduler == "hlfet":
        mapping, schedule = hlfet_schedule(graph, library, processors, style)
    else:
        raise SynthesisError(f"unknown scheduler {scheduler!r}")
    architecture = architecture_for(schedule, processors, library, style)
    return Design(
        graph=graph,
        library=library,
        style=style,
        architecture=architecture,
        mapping=mapping,
        schedule=schedule,
        makespan=schedule.makespan,
        cost=architecture.total_cost(),
        solver_name=f"heuristic-{scheduler}",
        proven_optimal=False,
    )


def heuristic_pareto(
    graph: TaskGraph,
    library: TechnologyLibrary,
    style: InterconnectStyle = InterconnectStyle.POINT_TO_POINT,
    schedulers: Sequence[str] = ("etf", "hlfet"),
    max_allocations: int = 4096,
) -> List[Design]:
    """Enumerate processor allocations and keep the non-inferior designs.

    Every non-empty subset of the candidate pool that covers all subtask
    capabilities is evaluated with each scheduler (subsets beyond
    ``max_allocations`` raise, pointing the user at a bigger budget or a
    smaller pool).

    Returns:
        Non-inferior designs, fastest first.
    """
    pool = library.instances()
    subsets = []
    for size in range(1, len(pool) + 1):
        subsets.extend(itertools.combinations(pool, size))
    if len(subsets) > max_allocations:
        raise SynthesisError(
            f"{len(subsets)} candidate allocations exceed max_allocations="
            f"{max_allocations}"
        )
    designs: List[Design] = []
    for subset in subsets:
        if not _covers(graph, subset):
            continue
        for scheduler in schedulers:
            designs.append(evaluate_allocation(graph, library, subset, style, scheduler))
    return pareto_filter(designs)


def pareto_filter(designs: Sequence[Design]) -> List[Design]:
    """Keep non-inferior designs only (deduplicated), fastest first."""
    front: List[Design] = []
    for candidate in designs:
        if any(other.dominates(candidate) for other in designs):
            continue
        if any(
            abs(kept.cost - candidate.cost) < 1e-9
            and abs(kept.makespan - candidate.makespan) < 1e-9
            for kept in front
        ):
            continue
        front.append(candidate)
    return sorted(front, key=lambda d: (d.makespan, d.cost))


def _covers(graph: TaskGraph, processors: Sequence[ProcessorInstance]) -> bool:
    return all(
        any(inst.can_execute(subtask.name) for inst in processors)
        for subtask in graph.subtasks
    )
