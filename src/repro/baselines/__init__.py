"""Baseline algorithms from the related work SOS is positioned against."""

from repro.baselines.bounds import (
    cost_lower_bound,
    lp_relaxation_bound,
    critical_path_bound,
    makespan_lower_bound,
    processor_count_lower_bound,
    work_bound,
)
from repro.baselines.heuristic_synthesis import (
    evaluate_allocation,
    heuristic_pareto,
    pareto_filter,
)
from repro.baselines.clustering import cluster_tasks, clustered_design
from repro.baselines.refinement import refine_design, refine_front
from repro.baselines.list_scheduler import (
    bottom_levels,
    etf_schedule,
    hlfet_schedule,
    mean_execution_time,
)

__all__ = [
    "cost_lower_bound",
    "lp_relaxation_bound",
    "critical_path_bound",
    "makespan_lower_bound",
    "processor_count_lower_bound",
    "work_bound",
    "evaluate_allocation",
    "heuristic_pareto",
    "pareto_filter",
    "cluster_tasks",
    "clustered_design",
    "refine_design",
    "refine_front",
    "bottom_levels",
    "etf_schedule",
    "hlfet_schedule",
    "mean_execution_time",
]
