"""Analytic lower bounds from the scheduling literature (§2).

Fernandez & Bussell (1973) bounded the makespan and the processor count
for homogeneous machines; Al-Mouhamed (1990) extended the completion-time
bound to graphs with communication costs.  We provide heterogeneous
adaptations — every bound is *safe* (never exceeds the true optimum) by
construction, which the property tests verify against the exact MILP.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.horizon import serial_lower_bound
from repro.system.library import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


def best_execution_time(graph: TaskGraph, library: TechnologyLibrary, task: str) -> float:
    """Fastest capable processor's ``D_PS`` for ``task``."""
    return min(ptype.execution_time(task) for ptype in library.capable_types(task))


def critical_path_bound(graph: TaskGraph, library: TechnologyLibrary) -> float:
    """Longest dependence chain with best-case execution and free
    communication — valid for any number of processors."""
    return serial_lower_bound(graph, library)


def work_bound(
    graph: TaskGraph,
    library: TechnologyLibrary,
    num_processors: Optional[int] = None,
) -> float:
    """Total-work bound: optimal makespan is at least the total best-case
    work divided by the processor count (pool size when ``None``)."""
    total = sum(
        best_execution_time(graph, library, subtask.name) for subtask in graph.subtasks
    )
    count = num_processors if num_processors is not None else len(library.instances())
    if count < 1:
        raise ValueError("processor count must be positive")
    return total / count


def makespan_lower_bound(
    graph: TaskGraph,
    library: TechnologyLibrary,
    num_processors: Optional[int] = None,
) -> float:
    """Max of the critical-path and total-work bounds (Fernandez-Bussell
    style, adapted to heterogeneity by using best-case times)."""
    return max(
        critical_path_bound(graph, library),
        work_bound(graph, library, num_processors),
    )


def processor_count_lower_bound(
    graph: TaskGraph,
    library: TechnologyLibrary,
    deadline: float,
) -> int:
    """Minimum processors needed to finish by ``deadline`` (work argument).

    Returns:
        ``ceil(total best-case work / deadline)`` — at least 1; ``math.inf``
        is never returned: an impossible deadline (below the critical path)
        yields a count that is simply unachievable, which callers detect by
        re-checking :func:`makespan_lower_bound`.
    """
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    total = sum(
        best_execution_time(graph, library, subtask.name) for subtask in graph.subtasks
    )
    return max(1, math.ceil(total / deadline - 1e-9))


def lp_relaxation_bound(
    graph: TaskGraph,
    library: TechnologyLibrary,
    cost_cap: Optional[float] = None,
) -> float:
    """The SOS model's own LP-relaxation bound on the optimal makespan.

    Stronger than the combinatorial bounds whenever communication or the
    cost cap binds: the relaxation sees every §3.3 timing constraint, just
    with fractional mapping variables.  Always a valid lower bound (the
    MILP's feasible set is contained in the LP's).

    Raises:
        ValueError: If even the relaxation is infeasible (then the MILP is
            certainly infeasible too).
    """
    from repro.core.formulation import build_sos_model
    from repro.core.options import FormulationOptions
    from repro.solvers.registry import get_solver

    built = build_sos_model(
        graph, library, FormulationOptions(cost_cap=cost_cap)
    )
    solution = get_solver("auto").solve(built.model.relaxed())
    if not solution.status.has_solution:
        raise ValueError("LP relaxation infeasible: the instance has no design")
    return solution.objective


def cost_lower_bound(graph: TaskGraph, library: TechnologyLibrary) -> float:
    """No system is cheaper than the cheapest single type set covering all
    subtasks — a coarse but safe bound used in sweep sanity checks."""
    cheapest_cover = math.inf
    for ptype in library.types:
        if all(ptype.can_execute(subtask.name) for subtask in graph.subtasks):
            cheapest_cover = min(cheapest_cover, ptype.cost)
    if math.isfinite(cheapest_cover):
        return cheapest_cover
    # No single type covers everything: at least the cheapest capable type
    # per subtask, maximized over subtasks (all of them must be bought).
    return max(
        min(ptype.cost for ptype in library.capable_types(subtask.name))
        for subtask in graph.subtasks
    )
