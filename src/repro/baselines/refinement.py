"""Local-search refinement of heuristic designs.

The task-allocation literature the paper surveys (§2) repeatedly uses
iterative improvement on top of constructive heuristics (Chu et al.'s
pairwise exchanges, Houstis's iterative allocation).  This module applies
that idea to whole designs: *move* single subtasks between processors and
*swap* subtask pairs, re-simulating each candidate, keeping strict
improvements in (makespan, cost) lexicographic order.

The refined design is still heuristic — the exact MILP front remains the
reference — but refinement closes much of the ETF/HLFET gap at a cost of
O(iterations · tasks · processors) simulations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.heuristic_synthesis import architecture_for
from repro.errors import SimulationError
from repro.sim.simulator import simulate_mapping
from repro.synthesis.design import Design
from repro.system.interconnect import InterconnectStyle
from repro.system.library import TechnologyLibrary
from repro.system.processors import ProcessorInstance
from repro.taskgraph.graph import TaskGraph


def _evaluate(
    graph: TaskGraph,
    library: TechnologyLibrary,
    mapping: Dict[str, str],
    style: InterconnectStyle,
    processors: Sequence[ProcessorInstance],
) -> Optional[Design]:
    """Simulate a mapping; None when it is invalid (incapable processor)."""
    try:
        schedule = simulate_mapping(graph, library, mapping, style=style)
    except SimulationError:
        return None
    architecture = architecture_for(schedule, processors, library, style)
    return Design(
        graph=graph,
        library=library,
        style=style,
        architecture=architecture,
        mapping=dict(mapping),
        schedule=schedule,
        makespan=schedule.makespan,
        cost=architecture.total_cost(),
        solver_name="heuristic-refined",
        proven_optimal=False,
    )


def _score(design: Design) -> Tuple[float, float]:
    return (design.makespan, design.cost)


def refine_design(
    design: Design,
    max_rounds: int = 10,
) -> Design:
    """Improve a design by task moves and swaps until a local optimum.

    Args:
        design: Starting design (typically from
            :func:`repro.baselines.heuristic_synthesis.evaluate_allocation`).
        max_rounds: Full improvement passes before giving up.

    Returns:
        A design with ``(makespan, cost)`` lexicographically <= the input's.
    """
    graph, library, style = design.graph, design.library, design.style
    pool = library.instances()
    best = _evaluate(graph, library, design.mapping, style, pool)
    if best is None:  # the input was produced differently; keep it untouched
        return design
    if _score(best) > _score(design):
        # Greedy re-simulation may schedule worse than the original order
        # did; fall back to the original as the incumbent baseline.
        best = design

    tasks = list(graph.subtask_names)
    for _ in range(max_rounds):
        improved = False
        # -- single-task moves ------------------------------------------
        for task in tasks:
            for inst in pool:
                if inst.name == best.mapping[task] or not inst.can_execute(task):
                    continue
                candidate_map = dict(best.mapping)
                candidate_map[task] = inst.name
                candidate = _evaluate(graph, library, candidate_map, style, pool)
                if candidate is not None and _score(candidate) < _score(best):
                    best = candidate
                    improved = True
        # -- pairwise swaps ----------------------------------------------
        for i, first in enumerate(tasks):
            for second in tasks[i + 1:]:
                p_first, p_second = best.mapping[first], best.mapping[second]
                if p_first == p_second:
                    continue
                candidate_map = dict(best.mapping)
                candidate_map[first], candidate_map[second] = p_second, p_first
                candidate = _evaluate(graph, library, candidate_map, style, pool)
                if candidate is not None and _score(candidate) < _score(best):
                    best = candidate
                    improved = True
        if not improved:
            break
    return best


def refine_front(designs: Sequence[Design], max_rounds: int = 10) -> List[Design]:
    """Refine every design and re-filter to the non-inferior subset."""
    from repro.baselines.heuristic_synthesis import pareto_filter

    return pareto_filter([refine_design(design, max_rounds) for design in designs])
