"""Structured solve tracing and progress reporting (the observability layer).

``repro.obs`` is a zero-dependency (stdlib-only) subsystem that turns a
running solve into a structured, replayable event stream:

* :class:`TraceEvent` — one typed event (``node_opened``, ``lp_solved``,
  ``incumbent_found``, ...) with a monotonic timestamp and a worker id.
* :class:`TraceSink` — the protocol every sink implements; shipped sinks
  are :class:`JsonlTraceSink` (one JSON object per line),
  :class:`MemoryTraceSink` (in-memory ring buffer), and
  :class:`NullTraceSink` (discard everything).
* :class:`Tracer` — the thin emitter solvers hold: stamps events with the
  clock and the worker id before handing them to the sink.
* :class:`ProgressReporter` / :class:`ProgressUpdate` — rate-limited
  ``on_progress`` callbacks carrying nodes/incumbent/bound/gap.
* :func:`replay_stats` — re-derive a :class:`~repro.milp.solution.SolveStats`
  from a trace, field for field, so telemetry can be cross-checked against
  the event stream.
* :func:`render_trace_summary` — the ``sos trace`` report: a
  bound-convergence timeline plus per-phase and per-worker profiles.

Attach a sink through :class:`~repro.solvers.base.SolverOptions`::

    from repro.obs import JsonlTraceSink
    from repro.solvers.base import SolverOptions

    with JsonlTraceSink("solve.jsonl") as sink:
        options = SolverOptions(trace=sink, workers=4)
        ...

See ``docs/observability.md`` for the full event schema.
"""

from repro.obs.events import (
    ENVELOPE_FIELDS,
    EVENT_SCHEMA,
    TraceEvent,
    check_schema,
    event_from_dict,
)
from repro.obs.progress import ProgressReporter, ProgressUpdate, print_progress
from repro.obs.replay import read_trace, replay_stats, split_runs
from repro.obs.report import render_trace_summary
from repro.obs.sinks import (
    JsonlTraceSink,
    MemoryTraceSink,
    NullTraceSink,
    Tracer,
    TraceSink,
    make_tracer,
)

__all__ = [
    "ENVELOPE_FIELDS",
    "EVENT_SCHEMA",
    "TraceEvent",
    "check_schema",
    "event_from_dict",
    "ProgressReporter",
    "ProgressUpdate",
    "print_progress",
    "read_trace",
    "replay_stats",
    "split_runs",
    "render_trace_summary",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "NullTraceSink",
    "Tracer",
    "TraceSink",
    "make_tracer",
]
