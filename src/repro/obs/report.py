"""Human-readable trace summaries (the ``sos trace`` report).

:func:`render_trace_summary` turns a list of :class:`TraceEvent` into a
plain-text report with three sections:

* a **bound-convergence timeline** — one row per milestone event
  (``solve_started``, ``incumbent_found``, ``incumbent_broadcast``,
  ``sweep_step``, ``solve_done``) annotated with the best dual bound
  tracked from the ``node_opened`` stream;
* a **per-phase profile** — seconds per named phase, LP time included;
* a **per-worker profile** — events, nodes, LP solves, and LP seconds
  per worker id.

Everything is stdlib string formatting: the report must render in any
environment that can read the JSONL file.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.obs.events import TraceEvent

#: Event types that get their own timeline row.
_TIMELINE_TYPES = frozenset(
    {
        "solve_started",
        "incumbent_found",
        "incumbent_broadcast",
        "sweep_step",
        "solve_done",
    }
)


def _fmt(value: object) -> str:
    """Render a payload value compactly (6 significant digits for floats)."""
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return str(value)
        return f"{value:.6g}"
    return str(value)


def _timeline_detail(event: TraceEvent) -> str:
    """The per-type annotation shown on a timeline row."""
    data = event.data
    if event.type == "solve_started":
        return f"solver={data.get('solver', '?')}"
    if event.type == "incumbent_found":
        return (
            f"objective={_fmt(data.get('objective'))} "
            f"node={data.get('node')} source={data.get('source')}"
        )
    if event.type == "incumbent_broadcast":
        return f"objective={_fmt(data.get('objective'))}"
    if event.type == "sweep_step":
        return (
            f"index={data.get('index')} kind={data.get('kind')} "
            f"feasible={data.get('feasible')}"
        )
    if event.type == "solve_done":
        return (
            f"status={data.get('status')} objective={_fmt(data.get('objective'))} "
            f"nodes={data.get('nodes')} seconds={_fmt(data.get('seconds'))}"
        )
    return ""


def render_trace_summary(events: Iterable[TraceEvent]) -> str:
    """Render a trace as a timeline + phase profile + worker profile.

    Args:
        events: Trace events (e.g. from :func:`repro.obs.replay.read_trace`).

    Returns:
        A multi-line plain-text report; ``"(empty trace)"`` for no events.
    """
    stream = list(events)
    if not stream:
        return "(empty trace)"

    t0 = min(event.t for event in stream)
    span = max(event.t for event in stream) - t0
    solves = sum(1 for e in stream if e.type == "solve_started")
    workers = sorted({event.worker for event in stream})

    lines: List[str] = [
        f"trace: {len(stream)} events over {span:.3f}s, "
        f"{solves} solve(s), {len(workers)} worker id(s)",
        "",
        "bound-convergence timeline",
        f"  {'t(s)':>9}  {'w':>2}  {'event':<19} detail",
    ]

    best_bound = -math.inf
    for event in stream:
        if event.type == "node_opened":
            bound = event.data.get("bound")
            if isinstance(bound, (int, float)) and bound > best_bound:
                best_bound = float(bound)
            continue
        if event.type not in _TIMELINE_TYPES:
            continue
        bound_note = "" if math.isinf(best_bound) else f"  [bound={_fmt(best_bound)}]"
        lines.append(
            f"  {event.t - t0:9.3f}  {event.worker:>2}  "
            f"{event.type:<19} {_timeline_detail(event)}{bound_note}"
        )

    phase_totals: Dict[str, float] = {}
    per_worker: Dict[int, Dict[str, float]] = {
        worker: {"events": 0, "nodes": 0, "lp_solves": 0, "lp_seconds": 0.0}
        for worker in workers
    }
    for event in stream:
        row = per_worker[event.worker]
        row["events"] += 1
        if event.type == "node_opened":
            row["nodes"] += 1
        elif event.type == "lp_solved":
            row["lp_solves"] += 1
            seconds = float(event.data.get("seconds", 0.0))
            row["lp_seconds"] += seconds
            phase_totals["lp"] = phase_totals.get("lp", 0.0) + seconds
        elif event.type == "phase":
            name = str(event.data.get("name", "?"))
            phase_totals[name] = phase_totals.get(name, 0.0) + float(
                event.data.get("seconds", 0.0)
            )

    lines += ["", "per-phase profile"]
    if phase_totals:
        total = sum(phase_totals.values())
        for name in sorted(phase_totals, key=phase_totals.get, reverse=True):
            seconds = phase_totals[name]
            share = seconds / total if total else 0.0
            lines.append(f"  {name:<10} {seconds:10.4f}s  {share:6.1%}")
    else:
        lines.append("  (no phase data)")

    lines += [
        "",
        "per-worker profile",
        f"  {'w':>2}  {'events':>7}  {'nodes':>7}  {'lp_solves':>9}  {'lp_seconds':>10}",
    ]
    for worker in workers:
        row = per_worker[worker]
        lines.append(
            f"  {worker:>2}  {int(row['events']):>7}  {int(row['nodes']):>7}  "
            f"{int(row['lp_solves']):>9}  {row['lp_seconds']:>10.4f}"
        )
    return "\n".join(lines)
