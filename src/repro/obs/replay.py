"""Replay a trace into :class:`~repro.milp.solution.SolveStats`.

The cross-check behind the observability layer: every counter a solver
reports must be *derivable* from its event stream.  :func:`replay_stats`
re-derives a :class:`SolveStats` from a trace using only the events —
nodes from ``node_opened``, pivots and LP timings from ``lp_solved``,
dispatch and broadcast counts from their events, non-LP phase timings
from ``phase`` events — and reproduces the solver's own accumulation
order (per worker, workers merged in dispatch order, solver runs merged
in call order), so the result matches the returned telemetry **exactly**,
floating-point phase timings included.

The one deliberate exception: backends that expose no per-node stream
(HiGHS) emit only coarse begin/end events, so a run with no ``node_opened``
and no ``lp_solved`` events takes ``nodes``/``lp_solves`` from its
``solve_done`` summary instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.milp.solution import SolveStats, root_gap_closed
from repro.obs.events import TraceEvent, event_from_dict


def read_trace(source: Union[str, Path, Iterable[str]]) -> List[TraceEvent]:
    """Load events from a JSONL file path (or an iterable of JSON lines)."""
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


def split_runs(events: Iterable[TraceEvent]) -> List[List[TraceEvent]]:
    """Split a trace into per-solve runs at ``solve_started`` boundaries.

    Events before the first ``solve_started`` (e.g. ``sweep_step`` markers
    between solves of a Pareto sweep) are dropped: they belong to the
    orchestration layer, not to any single solver run.
    """
    runs: List[List[TraceEvent]] = []
    current: List[TraceEvent] = []
    in_run = False
    for event in events:
        if event.type == "solve_started":
            if current:
                runs.append(current)
            current = [event]
            in_run = True
        elif event.type == "sweep_step":
            continue  # orchestration marker, not part of a solver run
        elif in_run:
            current.append(event)
            if event.type == "solve_done":
                runs.append(current)
                current = []
                in_run = False
    if current:
        runs.append(current)
    return runs


def _counters_for_worker(events: List[TraceEvent]) -> SolveStats:
    """Accumulate one worker's events, in stream order, into a SolveStats."""
    stats = SolveStats()
    first_cut_bound = None
    last_cut_bound = None
    for event in events:
        if event.type == "node_opened":
            stats.nodes += 1
        elif event.type == "lp_solved":
            stats.lp_solves += 1
            stats.lp_pivots += int(event.data["pivots"])
            if event.data["warm"]:
                stats.warm_starts += 1
                if not event.data["fallback"]:
                    stats.warm_start_hits += 1
            if event.data["fallback"]:
                stats.fallbacks += 1
            # Kernel counters ride as optional extras (absent when the
            # dense oracle answered, exactly as the solver absorbs them).
            stats.bound_flips += int(event.data.get("bound_flips", 0))
            stats.devex_resets += int(event.data.get("devex_resets", 0))
            stats.ftran_sparsity += int(event.data.get("ftran_sparsity", 0))
            stats.refactorizations += int(event.data.get("refactorizations", 0))
            stats.add_phase("lp", float(event.data["seconds"]))
        elif event.type == "phase":
            stats.add_phase(str(event.data["name"]), float(event.data["seconds"]))
        elif event.type == "subtree_dispatched":
            stats.subtrees_dispatched += 1
        elif event.type == "subtree_stolen":
            stats.subtrees_stolen += 1
        elif event.type == "worker_idle":
            stats.worker_idle_waits += 1
        elif event.type == "incumbent_found":
            if event.data.get("source") == "seed":
                stats.seeded_incumbent += 1
        elif event.type == "bounds_fixed":
            stats.rc_fixed_bounds += int(event.data["count"])
        elif event.type == "cut_round":
            stats.cut_rounds += 1
            stats.cuts_added += int(event.data["added"])
            if first_cut_bound is None:
                first_cut_bound = float(event.data["bound_before"])
            last_cut_bound = float(event.data["bound_after"])
        elif event.type == "strong_branch":
            stats.strong_branch_probes += int(event.data["probes"])
    if first_cut_bound is not None:
        # Same shared formula the solver uses, so the float matches exactly.
        stats.root_gap_closed = root_gap_closed(first_cut_bound, last_cut_bound)
    return stats


def _replay_run(run: List[TraceEvent]) -> SolveStats:
    """Replay one solver run (``solve_started`` .. ``solve_done``)."""
    worker_ids = sorted({event.worker for event in run})
    by_worker = {
        worker: [event for event in run if event.worker == worker]
        for worker in worker_ids
    }
    # Worker 0 (serial search / parallel ramp) anchors the accumulation;
    # subtree workers merge in ascending id = dispatch order, exactly the
    # order the parallel driver folds worker stats into the ramp's.
    stats = _counters_for_worker(by_worker.get(0, []))
    for worker in worker_ids:
        if worker == 0:
            continue
        stats.merge(_counters_for_worker(by_worker[worker]))

    stats.incumbent_broadcasts = sum(
        1 for event in run if event.type == "incumbent_broadcast"
    )
    done = next((e for e in reversed(run) if e.type == "solve_done"), None)
    if done is not None:
        stats.workers = int(done.data.get("workers", 0))
        stats.workers_requested = int(done.data.get("workers_requested", 0))
        if stats.nodes == 0 and stats.lp_solves == 0:
            # Coarse backend (HiGHS): no per-node stream; trust the summary.
            stats.nodes = int(done.data.get("nodes", 0))
            stats.lp_solves = int(done.data.get("lp_solves", stats.nodes))
    return stats


def replay_stats(events: Iterable[TraceEvent]) -> SolveStats:
    """Derive the aggregate :class:`SolveStats` a trace's solves reported.

    A single-solve trace replays to that solve's exact telemetry, and a
    ``synthesize`` call's trace (primary + secondary solve) replays to its
    merged stats exactly — the stream-order fold here is the same fold the
    synthesizer performs.  Sweep-level aggregates over many ``synthesize``
    calls match on every integer counter but can differ from the sweep's
    own nested fold in the last bits of the floating-point phase timings
    (the sweep folds per-call pairs before summing).
    """
    total = SolveStats()
    for run in split_runs(list(events)):
        total.merge(_replay_run(run))
    return total
