"""Typed trace events and their schema.

Every event carries three envelope fields — ``type``, ``t`` (a
``time.monotonic()`` timestamp), and ``worker`` (``0`` for the driving
process, ``1..K`` for parallel subtree workers) — plus a per-type payload.
:data:`EVENT_SCHEMA` names the payload keys every event of a type must
carry; emitters may add extra keys (e.g. ``lp_solved`` attaches the
revised-simplex pivot counters when the incremental path answered).

The JSONL wire format flattens the envelope and the payload into one
object per line::

    {"type": "incumbent_found", "t": 12.25, "worker": 2,
     "objective": 41.0, "node": 37, "source": "integral"}

Non-finite floats serialize as JSON's ``Infinity``/``NaN`` extensions
(the Python :mod:`json` default), which :func:`json.loads` round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

#: Envelope keys shared by every event; payload keys must not shadow them.
ENVELOPE_FIELDS = ("type", "t", "worker")

#: Required payload keys per event type.  Emitters may add extra keys;
#: consumers must tolerate them (the schema is additive across versions).
EVENT_SCHEMA: Dict[str, frozenset] = {
    # A solver run began (one per backend `solve` call).
    "solve_started": frozenset({"solver"}),
    # A branch-and-bound node was popped for processing.
    "node_opened": frozenset({"node", "bound", "depth"}),
    # One LP relaxation finished (tree nodes and dive steps alike).
    "lp_solved": frozenset({"pivots", "status", "warm", "fallback", "seconds"}),
    # A strictly-improving integral incumbent was adopted.
    "incumbent_found": frozenset({"objective", "node", "source"}),
    # Reduced-cost fixing tightened integral-variable bounds tree-wide.
    "bounds_fixed": frozenset({"node", "count"}),
    # One root separation round appended cuts and re-solved the root LP.
    "cut_round": frozenset(
        {"round", "generated", "added", "bound_before", "bound_after"}
    ),
    # Summary after the root cut loop: total cuts now in the LP.
    "cuts_added": frozenset({"count", "rounds", "gomory", "cover"}),
    # Root strong branching probed candidates to initialize pseudocosts.
    "strong_branch": frozenset({"node", "candidates", "probes", "chosen"}),
    # The parallel driver shipped one subtree to a worker.
    "subtree_dispatched": frozenset({"subtree", "node", "bound"}),
    # A spilled subtree node was picked up by a worker other than the one
    # that spilled it (fast parallel mode only).
    "subtree_stolen": frozenset({"node", "bound", "thief"}),
    # A pool worker found the shared node queue empty mid-solve (fast
    # parallel mode's starvation signal; ``slot`` is the idle worker).
    "worker_idle": frozenset({"slot"}),
    # A worker lowered the shared incumbent objective bound.
    "incumbent_broadcast": frozenset({"objective"}),
    # One step of a Pareto sweep finished (canonical, probe, or floor).
    "sweep_step": frozenset({"index", "kind", "feasible"}),
    # Wall-clock attribution for a named non-LP phase (presolve, search, ...).
    "phase": frozenset({"name", "seconds"}),
    # The solver run ended; carries the summary scalars.
    "solve_done": frozenset(
        {"status", "objective", "best_bound", "nodes", "workers", "seconds"}
    ),
    # -- service-layer events (repro.service) -------------------------------
    # A result-cache lookup answered from the store (no solver invoked).
    "cache_hit": frozenset({"key", "kind"}),
    # A result-cache lookup found nothing; a solve will follow.
    "cache_miss": frozenset({"key", "kind"}),
    # A freshly solved result entered the cache.
    "cache_store": frozenset({"key", "kind", "bytes"}),
    # The LRU byte budget pushed an entry out of the in-memory tier.
    "cache_evict": frozenset({"key", "bytes"}),
    # A synthesis job changed state (queued -> running -> done/...).
    "job_status": frozenset({"job", "status", "kind"}),
}


@dataclass(frozen=True)
class TraceEvent:
    """One structured solve event.

    Attributes:
        type: Event type, a key of :data:`EVENT_SCHEMA`.
        t: ``time.monotonic()`` timestamp at emission.  Monotonic clocks
            are system-wide on Linux, so timestamps from forked workers
            are directly comparable with the parent's.
        worker: ``0`` for the driving process (serial search, parallel
            ramp, sweep orchestrator); subtree workers are numbered from
            ``1`` in dispatch order.
        data: The per-type payload (see :data:`EVENT_SCHEMA`).
    """

    type: str
    t: float
    worker: int
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten envelope + payload into one JSON-compatible mapping."""
        merged: Dict[str, Any] = {"type": self.type, "t": self.t, "worker": self.worker}
        merged.update(self.data)
        return merged


def event_from_dict(document: Mapping[str, Any]) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its flattened JSONL form."""
    payload = {k: v for k, v in document.items() if k not in ENVELOPE_FIELDS}
    return TraceEvent(
        type=str(document["type"]),
        t=float(document["t"]),
        worker=int(document.get("worker", 0)),
        data=payload,
    )


def check_schema(events) -> List[str]:
    """Validate events against :data:`EVENT_SCHEMA`; returns problem strings.

    An empty list means every event has a known type, carries every
    required payload key, and shadows no envelope field.  Extra payload
    keys are allowed by design.
    """
    problems: List[str] = []
    for index, event in enumerate(events):
        required = EVENT_SCHEMA.get(event.type)
        if required is None:
            problems.append(f"event {index}: unknown type {event.type!r}")
            continue
        missing = required - set(event.data)
        if missing:
            problems.append(
                f"event {index} ({event.type}): missing fields {sorted(missing)}"
            )
        shadowed = set(event.data) & set(ENVELOPE_FIELDS)
        if shadowed:
            problems.append(
                f"event {index} ({event.type}): payload shadows envelope "
                f"fields {sorted(shadowed)}"
            )
    return problems
