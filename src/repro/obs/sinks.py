"""Trace sinks: where structured solve events go.

A sink is anything with ``emit(event)`` and ``close()``
(:class:`TraceSink`).  Three implementations ship:

* :class:`JsonlTraceSink` — append one JSON object per line to a file;
  the durable, replayable format ``sos trace`` consumes.
* :class:`MemoryTraceSink` — an in-memory ring buffer; what parallel
  subtree workers use before their events are merged into the parent's
  sink at join, and what tests inspect.
* :class:`NullTraceSink` — discard everything (an always-on instrument
  point with zero retention).

:class:`Tracer` is the emitter half: solvers hold one per worker, and it
stamps the clock and worker id onto every event before the sink sees it.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import IO, Any, List, Optional, Protocol, Union, runtime_checkable

from repro.obs.events import TraceEvent


@runtime_checkable
class TraceSink(Protocol):
    """What solvers need from a sink: ``emit`` plus idempotent ``close``."""

    def emit(self, event: TraceEvent) -> None:
        """Record one event.  Must be cheap; called on the solver hot path."""
        ...

    def close(self) -> None:
        """Flush and release resources; safe to call more than once."""
        ...


class NullTraceSink:
    """A sink that discards every event (tracing disabled, shape kept)."""

    def emit(self, event: TraceEvent) -> None:
        """Discard ``event``."""

    def close(self) -> None:
        """No-op."""

    def __enter__(self) -> "NullTraceSink":
        """Context-manager support (symmetric with the real sinks)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """No-op on exit."""
        self.close()


class MemoryTraceSink:
    """An in-memory ring buffer of events.

    Args:
        maxlen: Keep only the newest ``maxlen`` events (``None`` keeps
            everything).  The ring form bounds memory on long solves when
            only the tail matters.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self._events: deque = deque(maxlen=maxlen)

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def emit(self, event: TraceEvent) -> None:
        """Append ``event``, evicting the oldest past ``maxlen``."""
        self._events.append(event)

    def close(self) -> None:
        """No-op (the buffer stays readable after close)."""

    def __len__(self) -> int:
        """Number of retained events."""
        return len(self._events)

    def __enter__(self) -> "MemoryTraceSink":
        """Context-manager support."""
        return self

    def __exit__(self, *exc_info) -> None:
        """No-op on exit."""
        self.close()


class JsonlTraceSink:
    """Append events to a JSONL file (one flattened JSON object per line).

    Args:
        target: A path (opened for writing, closed by :meth:`close`) or an
            already-open text file object (left open; the caller owns it).
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True
        self._closed = False

    def emit(self, event: TraceEvent) -> None:
        """Serialize ``event`` as one JSON line."""
        self._file.write(json.dumps(event.to_dict()) + "\n")

    def close(self) -> None:
        """Flush, and close the file if this sink opened it."""
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlTraceSink":
        """Context-manager support: ``with JsonlTraceSink(path) as sink:``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


class Tracer:
    """Per-worker event emitter: stamps clock + worker id onto payloads.

    Solvers hold one ``Tracer`` per logical worker and call
    :meth:`emit`; a ``None`` tracer (tracing disabled) costs a single
    ``is not None`` check on the hot path.

    Args:
        sink: Destination sink (shared between tracers is fine within one
            process; parallel workers use a private :class:`MemoryTraceSink`
            merged at join).
        worker: Worker id stamped onto every event.
        clock: Timestamp source; injectable for deterministic tests.
    """

    __slots__ = ("sink", "worker", "_clock")

    def __init__(self, sink, worker: int = 0, clock=time.monotonic) -> None:
        self.sink = sink
        self.worker = worker
        self._clock = clock

    def emit(self, event_type: str, **data: Any) -> None:
        """Emit one event of ``event_type`` with payload ``data``."""
        self.sink.emit(TraceEvent(event_type, self._clock(), self.worker, data))


def make_tracer(sink, worker: int = 0) -> Optional[Tracer]:
    """A :class:`Tracer` over ``sink``, or ``None`` when ``sink`` is ``None``.

    The helper keeps solver call sites to one line: they thread the
    returned value and guard emissions with ``if tracer is not None``.
    """
    if sink is None:
        return None
    return Tracer(sink, worker=worker)
