"""Rate-limited progress reporting for long solves.

:class:`ProgressReporter` wraps a user callback (``SolverOptions.on_progress``)
and enforces the two guarantees solvers need to call it from the hot path:

* **Rate limiting** — at most one report per ``interval`` seconds (plus a
  forced final report at solve end), so a million-node search does not
  spend its time formatting progress lines.
* **Exception isolation** — a callback that raises is disabled after a
  single :class:`RuntimeWarning`; a broken progress bar must never kill
  a multi-hour solve.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ProgressUpdate:
    """One progress snapshot handed to an ``on_progress`` callback.

    Attributes:
        nodes: Branch-and-bound nodes processed so far.
        incumbent: Best integral objective found (``inf`` when none yet).
        bound: Best proven dual bound (``-inf`` before the root solves).
        gap: Relative incumbent/bound gap (``inf`` without an incumbent).
        elapsed: Seconds since the solve began.
    """

    nodes: int
    incumbent: float
    bound: float
    gap: float
    elapsed: float

    def __str__(self) -> str:
        """Compact single-line rendering (what deprecated ``verbose`` prints)."""
        incumbent = "-" if math.isinf(self.incumbent) else f"{self.incumbent:.6g}"
        gap = "-" if math.isinf(self.gap) else f"{self.gap:.2%}"
        return (
            f"[{self.elapsed:8.2f}s] nodes={self.nodes} "
            f"incumbent={incumbent} bound={self.bound:.6g} gap={gap}"
        )


class ProgressReporter:
    """Invoke a progress callback at most once per ``interval`` seconds.

    Args:
        callback: The user's ``on_progress`` function; ``None`` makes every
            :meth:`report` a no-op (so solvers can call unconditionally).
        interval: Minimum seconds between callbacks (forced reports exempt).
        clock: Timestamp source; injectable for deterministic tests.
        start: Solve start time; defaults to the clock's value at
            construction and anchors :attr:`ProgressUpdate.elapsed`.
    """

    def __init__(
        self,
        callback: Optional[Callable[[ProgressUpdate], None]],
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        start: Optional[float] = None,
    ) -> None:
        self._callback = callback
        self._interval = interval
        self._clock = clock
        self._start = clock() if start is None else start
        self._last = -math.inf
        self._disabled = callback is None

    @property
    def enabled(self) -> bool:
        """False when there is no callback or it was disabled after raising."""
        return not self._disabled

    def report(
        self,
        *,
        nodes: int,
        incumbent: float = math.inf,
        bound: float = -math.inf,
        force: bool = False,
    ) -> None:
        """Maybe invoke the callback with a fresh :class:`ProgressUpdate`.

        Args:
            nodes: Nodes processed so far.
            incumbent: Current best integral objective (``inf`` if none).
            bound: Current best dual bound.
            force: Bypass the rate limit (used for the final report).
        """
        if self._disabled:
            return
        now = self._clock()
        if not force and now - self._last < self._interval:
            return
        self._last = now
        if math.isinf(incumbent):
            gap = math.inf
        else:
            gap = abs(incumbent - bound) / max(1.0, abs(incumbent))
        update = ProgressUpdate(
            nodes=nodes,
            incumbent=incumbent,
            bound=bound,
            gap=gap,
            elapsed=now - self._start,
        )
        try:
            self._callback(update)  # type: ignore[misc]
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            self._disabled = True
            warnings.warn(
                f"on_progress callback raised {exc!r}; progress reporting "
                "disabled for the rest of this solve",
                RuntimeWarning,
                stacklevel=2,
            )


def print_progress(update: ProgressUpdate) -> None:
    """The default callback substituted for the deprecated ``verbose=True``."""
    print(str(update), flush=True)
