"""MILP presolve: iterated bound propagation and coefficient reduction.

A light version of the reductions every production MILP solver applies
before branch and bound:

* **activity-based bound tightening** — for each row, the minimum/maximum
  activity of all-but-one variable implies bounds on the remaining one;
* **integral rounding** — integral variables' bounds shrink to integers;
* **coefficient reduction** — on a ``<=`` row, a binary variable whose
  coefficient exceeds the row's worst-case slack can have the coefficient
  (and, for positive coefficients, the right-hand side) shrunk without
  cutting any integer point, in the spirit of pyomo's
  ``contrib/preprocessing`` constraint tightener.  The LP relaxation gets
  strictly tighter while the integer feasible set is untouched;
* **redundant-row removal** — a ``<=`` row whose maximum activity cannot
  exceed its right-hand side is dropped;
* **infeasibility detection** — a row whose minimum activity exceeds its
  rhs (or a variable whose bounds cross) proves the model infeasible.

The reductions never remove feasible integer points, so solving the
presolved model is equivalent — a property the test suite checks against
both backends.

Each sweep is split into a **vectorized screen** and an **exact pass**:
one whole-matrix evaluation of the tightening conditions (start-of-sweep
bounds) flags the rows that can possibly change, and only flagged rows
run the element-wise update, which sees bound changes made by earlier
rows in the same sweep.  A row the screen skips would have produced no
change under the screened bounds; if an earlier row's update makes it
productive after all, the next sweep's screen picks it up, so the
iteration reaches the same fixpoint while per-sweep cost stays at a few
matrix operations instead of one Python loop iteration per row.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.milp.model import MatrixForm


@dataclass
class PresolveResult:
    """Outcome of presolving a matrix form.

    Attributes:
        form: The reduced matrix form (tighter bounds; possibly modified
            ``a_ub``/``b_ub`` after coefficient reduction or redundant-row
            removal), or ``None`` when infeasibility was proven.
        proven_infeasible: Whether bound propagation proved infeasibility.
        fixed_variables: How many variables ended with ``lb == ub``.
        tightened_bounds: How many individual bound changes were applied.
        coefficients_tightened: Individual ``a_ub`` entries reduced.
        redundant_rows: ``<=`` rows removed as never-binding.
        rounds: Propagation sweeps performed.
    """

    form: Optional[MatrixForm]
    proven_infeasible: bool = False
    fixed_variables: int = 0
    tightened_bounds: int = 0
    coefficients_tightened: int = 0
    redundant_rows: int = 0
    rounds: int = 0


class _Propagator:
    """One presolve run: bounds, rows, and the screened sweeps."""

    def __init__(self, form: MatrixForm, tol: float) -> None:
        self.tol = tol
        self.lb = form.lb.copy()
        self.ub = form.ub.copy()
        self.integral_idx = np.nonzero(np.asarray(form.integrality, dtype=bool))[0]
        self.a_ub = form.a_ub.copy() if form.a_ub.size else form.a_ub
        self.b_ub = form.b_ub.copy() if form.b_ub.size else form.b_ub
        self.a_eq = form.a_eq
        self.b_eq = form.b_eq
        self.n_ub = self.a_ub.shape[0] if self.a_ub.size else 0
        self.n_eq = self.a_eq.shape[0] if self.a_eq.size else 0
        self.tightened = 0
        self.coef_tightened = 0
        self.infeasible = False

    # -- vectorized screens --------------------------------------------------
    def _activity_products(self, a) -> Tuple[np.ndarray, np.ndarray]:
        """Per-entry min/max activity contributions, zeros neutralized.

        ``0 * inf`` is nan, and a zero coefficient contributes nothing, so
        zero entries are forced to exactly 0 in both product matrices.
        """
        zero = a == 0.0
        prod_lo = a * self.lb[None, :]
        prod_hi = a * self.ub[None, :]
        prod_lo[zero] = 0.0
        prod_hi[zero] = 0.0
        return np.minimum(prod_lo, prod_hi), np.maximum(prod_lo, prod_hi)

    def screen_bounds(self, a, b, equality: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Flag rows whose activity can tighten a bound or prove infeasibility.

        Evaluates the element-wise tightening conditions over the whole
        block at start-of-sweep bounds; returns ``(tighten_rows,
        infeasible_rows)`` boolean masks.  Conservative in the right
        direction: every row the exact pass would change *under these
        bounds* is flagged.
        """
        cmin, cmax = self._activity_products(a)
        min_act = cmin.sum(axis=1)
        infeas = min_act > b + 1e-7
        pos = a > 0
        neg = a < 0
        rest_min = min_act[:, None] - cmin
        finite = np.isfinite(rest_min)
        cand = (b[:, None] - rest_min) / a
        hit = finite & (
            (pos & (cand < self.ub[None, :] - 1e-9))
            | (neg & (cand > self.lb[None, :] + 1e-9))
        )
        if equality:
            max_act = cmax.sum(axis=1)
            infeas |= max_act < b - 1e-7
            rest_max = max_act[:, None] - cmax
            finite2 = np.isfinite(rest_max)
            cand2 = (b[:, None] - rest_max) / a
            hit |= finite2 & (
                (pos & (cand2 > self.lb[None, :] + 1e-9))
                | (neg & (cand2 < self.ub[None, :] - 1e-9))
            )
        return hit.any(axis=1), infeas

    def screen_coefficients(self, binary: np.ndarray) -> np.ndarray:
        """Flag ``<=`` rows holding at least one reducible binary coefficient."""
        tol = self.tol
        a, b = self.a_ub, self.b_ub
        _, cmax = self._activity_products(a)
        max_act = cmax.sum(axis=1)
        rest_max = max_act[:, None] - cmax
        finite = np.isfinite(rest_max)
        slack = b[:, None] - rest_max
        unit_box = binary & (self.ub - self.lb == 1.0) & (self.lb == 0.0)
        pos_hit = (a > 0) & (slack > tol) & (a > slack + tol)
        neg_hit = (a < 0) & (-slack > tol) & (rest_max < b[:, None] - a - tol)
        return (finite & unit_box[None, :] & (pos_hit | neg_hit)).any(axis=1)

    # -- exact element-wise passes -------------------------------------------
    def round_integral(self) -> bool:
        """Snap integral variables' bounds inward to integers."""
        tol, idx = self.tol, self.integral_idx
        if idx.size == 0:
            return False
        lb_i, ub_i = self.lb[idx], self.ub[idx]
        snapped_lo = np.ceil(lb_i - tol)
        snapped_hi = np.floor(ub_i + tol)
        up_lo = np.isfinite(lb_i) & (snapped_lo > lb_i + tol)
        dn_hi = np.isfinite(ub_i) & (snapped_hi < ub_i - tol)
        if not up_lo.any() and not dn_hi.any():
            return False
        self.lb[idx[up_lo]] = snapped_lo[up_lo]
        self.ub[idx[dn_hi]] = snapped_hi[dn_hi]
        self.tightened += int(np.sum(up_lo)) + int(np.sum(dn_hi))
        return True

    def tighten_row(self, coefficients, rhs: float, is_equality: bool) -> bool:
        """Activity-based bound tightening of one row; True if bounds moved.

        Vectorized over the row's support: every candidate bound uses the
        row activity computed at entry (the per-variable updates of the
        classic element-wise sweep are mutually independent within a
        row), with equality rows running a second pass against the
        maximum activity for the opposite-side bound.
        """
        nz = np.nonzero(coefficients)[0]
        if nz.size == 0:
            if rhs < -self.tol or (is_equality and abs(rhs) > self.tol):
                self.infeasible = True
            return False
        coef = coefficients[nz]
        lb_nz, ub_nz = self.lb[nz], self.ub[nz]
        pos = coef > 0
        contribution_min = np.where(pos, coef * lb_nz, coef * ub_nz)
        contribution_max = np.where(pos, coef * ub_nz, coef * lb_nz)
        min_activity = float(np.sum(contribution_min))
        max_activity = float(np.sum(contribution_max))
        if min_activity > rhs + 1e-7 or (is_equality and max_activity < rhs - 1e-7):
            self.infeasible = True
            return False

        changed = False
        # a_j x_j <= rhs - rest_min  (equality rows give both sides).
        rest_min = min_activity - contribution_min
        cand = (rhs - rest_min) / coef
        finite = np.isfinite(rest_min)
        upd_ub = finite & pos & (cand < ub_nz - 1e-9)
        upd_lb = finite & ~pos & (cand > lb_nz + 1e-9)
        if upd_ub.any():
            self.ub[nz[upd_ub]] = cand[upd_ub]
            changed = True
        if upd_lb.any():
            self.lb[nz[upd_lb]] = cand[upd_lb]
            changed = True
        self.tightened += int(np.sum(upd_ub)) + int(np.sum(upd_lb))
        if is_equality:
            # Opposite side, against current (possibly just-updated)
            # bounds: a_j x_j >= rhs - rest_max.
            lb_cur, ub_cur = self.lb[nz], self.ub[nz]
            rest_max = max_activity - np.where(pos, coef * ub_cur, coef * lb_cur)
            cand2 = (rhs - rest_max) / coef
            finite2 = np.isfinite(rest_max)
            upd2_lb = finite2 & pos & (cand2 > lb_cur + 1e-9)
            upd2_ub = finite2 & ~pos & (cand2 < ub_cur - 1e-9)
            if upd2_lb.any():
                self.lb[nz[upd2_lb]] = cand2[upd2_lb]
                changed = True
            if upd2_ub.any():
                self.ub[nz[upd2_ub]] = cand2[upd2_ub]
                changed = True
            self.tightened += int(np.sum(upd2_lb)) + int(np.sum(upd2_ub))
        return changed

    def reduce_row_coefficients(self, i: int, binary: np.ndarray) -> bool:
        """Coefficient reduction on ``<=`` row ``i`` for binary variables.

        On ``a_j x_j + R <= b`` with x_j in {0, 1}: whenever the rest of
        the row can never use the full slack (Rmax < b for a_j > 0),
        shrinking ``a_j`` to ``a_j - (b - Rmax)`` and ``b`` to ``Rmax``
        leaves both integer assignments of x_j exactly as constrained as
        before, while every fractional x_j is constrained harder.  The
        rest-of-row maximum activity is maintained as a running total so
        the pass is linear in the support size.
        """
        tol = self.tol
        row = self.a_ub[i]
        nz = np.nonzero(row)[0]
        if nz.size == 0:
            return False
        lb_nz, ub_nz = self.lb[nz], self.ub[nz]
        contrib = np.where(row[nz] > 0, row[nz] * ub_nz, row[nz] * lb_nz)
        total = float(np.sum(contrib))
        changed = False
        for k, j in enumerate(nz):
            if not binary[j] or self.ub[j] - self.lb[j] != 1.0 or self.lb[j] != 0.0:
                continue
            a = float(row[j])
            if a == 0.0:
                continue
            rest_max = total - float(contrib[k])
            if not math.isfinite(rest_max):
                continue
            b = float(self.b_ub[i])
            if a > 0 and b - rest_max > tol and a > b - rest_max + tol:
                new_a = a - (b - rest_max)
                row[j] = new_a
                self.b_ub[i] = rest_max
                total += new_a - a  # a binary's contribution is a*1 = a
                contrib[k] = new_a
                self.coef_tightened += 1
                changed = True
            elif a < 0 and rest_max > b + tol and rest_max < b - a - tol:
                # Complemented form of the same reduction: the new
                # coefficient is ``b - rest_max`` (< 0), rhs unchanged.
                row[j] = b - rest_max
                # a < 0 contributes a*lb = 0 for a 0/1 variable: total
                # and contrib[k] stay 0 under the new (negative) value.
                self.coef_tightened += 1
                changed = True
        return changed

    def drop_redundant_rows(self) -> int:
        """Remove ``<=`` rows that can never bind under the final bounds."""
        if not self.n_ub:
            return 0
        _, cmax = self._activity_products(self.a_ub)
        max_activity = cmax.sum(axis=1)
        keep = ~(np.isfinite(max_activity) & (max_activity <= self.b_ub + self.tol))
        redundant = int(self.n_ub - np.sum(keep))
        if redundant:
            self.a_ub = self.a_ub[keep]
            self.b_ub = self.b_ub[keep]
        return redundant


def presolve(form: MatrixForm, max_rounds: int = 20, tol: float = 1e-9) -> PresolveResult:
    """Tighten variable bounds and ``<=``-row coefficients by propagation.

    Args:
        form: Matrix form to reduce (not modified; a copy is returned).
        max_rounds: Maximum propagation sweeps.
        tol: Numerical tolerance.
    """
    prop = _Propagator(form, tol)

    # Integral variables start on integer bounds.
    prop.round_integral()
    if np.any(prop.lb > prop.ub + tol):
        return PresolveResult(
            form=None, proven_infeasible=True, tightened_bounds=prop.tightened
        )
    binary = (
        np.asarray(form.integrality, dtype=bool)
        & np.isfinite(prop.lb) & np.isfinite(prop.ub)
    )

    def infeasible(rounds: int) -> PresolveResult:
        return PresolveResult(
            form=None, proven_infeasible=True,
            tightened_bounds=prop.tightened,
            coefficients_tightened=prop.coef_tightened, rounds=rounds,
        )

    rounds = 0
    with np.errstate(invalid="ignore", divide="ignore"):
        for _ in range(max_rounds):
            rounds += 1
            changed = False
            for a, b, equality in (
                (prop.a_ub, prop.b_ub, False),
                (prop.a_eq, prop.b_eq, True),
            ):
                if not a.size:
                    continue
                hit, infeas = prop.screen_bounds(a, b, equality)
                for i in np.nonzero(hit | infeas)[0]:
                    changed |= prop.tighten_row(a[i], float(b[i]), equality)
                    if prop.infeasible:
                        return infeasible(rounds)
            if prop.n_ub:
                for i in np.nonzero(prop.screen_coefficients(binary))[0]:
                    changed |= prop.reduce_row_coefficients(int(i), binary)
            changed |= prop.round_integral()
            if np.any(prop.lb > prop.ub + 1e-7):
                return infeasible(rounds)
            if not changed:
                break

        redundant = prop.drop_redundant_rows()
    reduced = dataclasses.replace(
        form, a_ub=prop.a_ub, b_ub=prop.b_ub, lb=prop.lb, ub=prop.ub
    )
    fixed = int(np.sum(
        np.isfinite(prop.lb) & np.isfinite(prop.ub) & (prop.ub - prop.lb <= tol)
    ))
    return PresolveResult(
        form=reduced, fixed_variables=fixed,
        tightened_bounds=prop.tightened,
        coefficients_tightened=prop.coef_tightened,
        redundant_rows=redundant, rounds=rounds,
    )
