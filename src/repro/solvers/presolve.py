"""MILP presolve: iterated bound propagation.

A light version of the reductions every production MILP solver applies
before branch and bound:

* **activity-based bound tightening** — for each row, the minimum/maximum
  activity of all-but-one variable implies bounds on the remaining one;
* **integral rounding** — integral variables' bounds shrink to integers;
* **infeasibility detection** — a row whose minimum activity exceeds its
  rhs (or a variable whose bounds cross) proves the model infeasible.

The reductions never remove feasible integer points, so solving the
presolved model is equivalent — a property the test suite checks against
both backends.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.milp.model import MatrixForm


@dataclass
class PresolveResult:
    """Outcome of presolving a matrix form.

    Attributes:
        form: The reduced matrix form (same matrices, tighter bounds), or
            ``None`` when infeasibility was proven.
        proven_infeasible: Whether bound propagation proved infeasibility.
        fixed_variables: How many variables ended with ``lb == ub``.
        tightened_bounds: How many individual bound changes were applied.
        rounds: Propagation sweeps performed.
    """

    form: Optional[MatrixForm]
    proven_infeasible: bool = False
    fixed_variables: int = 0
    tightened_bounds: int = 0
    rounds: int = 0


def presolve(form: MatrixForm, max_rounds: int = 20, tol: float = 1e-9) -> PresolveResult:
    """Tighten variable bounds by constraint propagation.

    Args:
        form: Matrix form to reduce (not modified; a copy is returned).
        max_rounds: Maximum propagation sweeps.
        tol: Numerical tolerance.
    """
    lb = form.lb.copy()
    ub = form.ub.copy()
    integrality = form.integrality
    tightened = 0

    # Integral variables start on integer bounds.
    tightened += _round_integral_bounds(lb, ub, integrality, tol)
    if np.any(lb > ub + tol):
        return PresolveResult(form=None, proven_infeasible=True, tightened_bounds=tightened)

    rows = []
    if form.a_ub.size:
        for i in range(form.a_ub.shape[0]):
            rows.append((form.a_ub[i], form.b_ub[i], False))
    if form.a_eq.size:
        for i in range(form.a_eq.shape[0]):
            rows.append((form.a_eq[i], form.b_eq[i], True))

    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        changed = False
        for coefficients, rhs, is_equality in rows:
            nonzero = np.nonzero(coefficients)[0]
            if nonzero.size == 0:
                if rhs < -tol or (is_equality and abs(rhs) > tol):
                    return PresolveResult(
                        form=None, proven_infeasible=True,
                        tightened_bounds=tightened, rounds=rounds,
                    )
                continue
            # Activity bounds of the whole row.
            contribution_min = np.where(
                coefficients > 0, coefficients * lb, coefficients * ub
            )
            contribution_max = np.where(
                coefficients > 0, coefficients * ub, coefficients * lb
            )
            min_activity = float(np.sum(contribution_min[nonzero]))
            max_activity = float(np.sum(contribution_max[nonzero]))
            if min_activity > rhs + 1e-7:
                return PresolveResult(
                    form=None, proven_infeasible=True,
                    tightened_bounds=tightened, rounds=rounds,
                )
            if is_equality and max_activity < rhs - 1e-7:
                return PresolveResult(
                    form=None, proven_infeasible=True,
                    tightened_bounds=tightened, rounds=rounds,
                )
            for j in nonzero:
                a = coefficients[j]
                # Row without j's contribution.
                rest_min = min_activity - min(a * lb[j], a * ub[j])
                if not math.isfinite(rest_min):
                    continue
                # a * x_j <= rhs - rest_min  (for <=; equality gives both sides)
                slack = rhs - rest_min
                if a > 0:
                    new_ub = slack / a
                    if new_ub < ub[j] - 1e-9:
                        ub[j] = new_ub
                        changed = True
                        tightened += 1
                else:
                    new_lb = slack / a
                    if new_lb > lb[j] + 1e-9:
                        lb[j] = new_lb
                        changed = True
                        tightened += 1
                if is_equality:
                    rest_max = max_activity - max(a * lb[j], a * ub[j])
                    if math.isfinite(rest_max):
                        slack_low = rhs - rest_max  # a * x_j >= slack_low
                        if a > 0:
                            new_lb = slack_low / a
                            if new_lb > lb[j] + 1e-9:
                                lb[j] = new_lb
                                changed = True
                                tightened += 1
                        else:
                            new_ub = slack_low / a
                            if new_ub < ub[j] - 1e-9:
                                ub[j] = new_ub
                                changed = True
                                tightened += 1
        tightened += _round_integral_bounds(lb, ub, integrality, tol)
        if np.any(lb > ub + 1e-7):
            return PresolveResult(
                form=None, proven_infeasible=True,
                tightened_bounds=tightened, rounds=rounds,
            )
        if not changed:
            break

    reduced = dataclasses.replace(form, lb=lb, ub=ub)
    fixed = int(np.sum(np.isfinite(lb) & np.isfinite(ub) & (ub - lb <= tol)))
    return PresolveResult(
        form=reduced, fixed_variables=fixed,
        tightened_bounds=tightened, rounds=rounds,
    )


def _round_integral_bounds(
    lb: np.ndarray, ub: np.ndarray, integrality: np.ndarray, tol: float
) -> int:
    """Snap integral variables' bounds inward to integers; returns changes."""
    changes = 0
    idx = np.nonzero(integrality)[0]
    for j in idx:
        if math.isfinite(lb[j]):
            snapped = math.ceil(lb[j] - tol)
            if snapped > lb[j] + tol:
                lb[j] = float(snapped)
                changes += 1
        if math.isfinite(ub[j]):
            snapped = math.floor(ub[j] + tol)
            if snapped < ub[j] - tol:
                ub[j] = float(snapped)
                changes += 1
    return changes
