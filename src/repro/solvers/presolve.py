"""MILP presolve: iterated bound propagation and coefficient reduction.

A light version of the reductions every production MILP solver applies
before branch and bound:

* **activity-based bound tightening** — for each row, the minimum/maximum
  activity of all-but-one variable implies bounds on the remaining one;
* **integral rounding** — integral variables' bounds shrink to integers;
* **coefficient reduction** — on a ``<=`` row, a binary variable whose
  coefficient exceeds the row's worst-case slack can have the coefficient
  (and, for positive coefficients, the right-hand side) shrunk without
  cutting any integer point, in the spirit of pyomo's
  ``contrib/preprocessing`` constraint tightener.  The LP relaxation gets
  strictly tighter while the integer feasible set is untouched;
* **redundant-row removal** — a ``<=`` row whose maximum activity cannot
  exceed its right-hand side is dropped;
* **infeasibility detection** — a row whose minimum activity exceeds its
  rhs (or a variable whose bounds cross) proves the model infeasible.

The reductions never remove feasible integer points, so solving the
presolved model is equivalent — a property the test suite checks against
both backends.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.milp.model import MatrixForm


@dataclass
class PresolveResult:
    """Outcome of presolving a matrix form.

    Attributes:
        form: The reduced matrix form (tighter bounds; possibly modified
            ``a_ub``/``b_ub`` after coefficient reduction or redundant-row
            removal), or ``None`` when infeasibility was proven.
        proven_infeasible: Whether bound propagation proved infeasibility.
        fixed_variables: How many variables ended with ``lb == ub``.
        tightened_bounds: How many individual bound changes were applied.
        coefficients_tightened: Individual ``a_ub`` entries reduced.
        redundant_rows: ``<=`` rows removed as never-binding.
        rounds: Propagation sweeps performed.
    """

    form: Optional[MatrixForm]
    proven_infeasible: bool = False
    fixed_variables: int = 0
    tightened_bounds: int = 0
    coefficients_tightened: int = 0
    redundant_rows: int = 0
    rounds: int = 0


def presolve(form: MatrixForm, max_rounds: int = 20, tol: float = 1e-9) -> PresolveResult:
    """Tighten variable bounds and ``<=``-row coefficients by propagation.

    Args:
        form: Matrix form to reduce (not modified; a copy is returned).
        max_rounds: Maximum propagation sweeps.
        tol: Numerical tolerance.
    """
    lb = form.lb.copy()
    ub = form.ub.copy()
    integrality = form.integrality
    tightened = 0

    # Integral variables start on integer bounds.
    tightened += _round_integral_bounds(lb, ub, integrality, tol)
    if np.any(lb > ub + tol):
        return PresolveResult(form=None, proven_infeasible=True, tightened_bounds=tightened)

    a_ub = form.a_ub.copy() if form.a_ub.size else form.a_ub
    b_ub = form.b_ub.copy() if form.b_ub.size else form.b_ub
    n_ub = a_ub.shape[0] if a_ub.size else 0
    coef_tightened = 0
    binary = (
        np.asarray(integrality, dtype=bool)
        & np.isfinite(lb) & np.isfinite(ub)
    )

    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        changed = False
        rows = []
        for i in range(n_ub):
            rows.append((a_ub[i], b_ub[i], False))
        if form.a_eq.size:
            for i in range(form.a_eq.shape[0]):
                rows.append((form.a_eq[i], form.b_eq[i], True))
        for coefficients, rhs, is_equality in rows:
            nonzero = np.nonzero(coefficients)[0]
            if nonzero.size == 0:
                if rhs < -tol or (is_equality and abs(rhs) > tol):
                    return PresolveResult(
                        form=None, proven_infeasible=True,
                        tightened_bounds=tightened,
                        coefficients_tightened=coef_tightened, rounds=rounds,
                    )
                continue
            # Activity bounds of the whole row, over nonzero entries only
            # (a zero coefficient times an infinite bound would be nan).
            nz_coef = coefficients[nonzero]
            contribution_min = np.where(
                nz_coef > 0, nz_coef * lb[nonzero], nz_coef * ub[nonzero]
            )
            contribution_max = np.where(
                nz_coef > 0, nz_coef * ub[nonzero], nz_coef * lb[nonzero]
            )
            min_activity = float(np.sum(contribution_min))
            max_activity = float(np.sum(contribution_max))
            if min_activity > rhs + 1e-7:
                return PresolveResult(
                    form=None, proven_infeasible=True,
                    tightened_bounds=tightened,
                    coefficients_tightened=coef_tightened, rounds=rounds,
                )
            if is_equality and max_activity < rhs - 1e-7:
                return PresolveResult(
                    form=None, proven_infeasible=True,
                    tightened_bounds=tightened,
                    coefficients_tightened=coef_tightened, rounds=rounds,
                )
            for j in nonzero:
                # Python-float arithmetic: ``inf - inf`` is a silent nan,
                # caught by the isfinite guards below.
                a = float(coefficients[j])
                # Row without j's contribution.
                rest_min = min_activity - min(a * float(lb[j]), a * float(ub[j]))
                if not math.isfinite(rest_min):
                    continue
                # a * x_j <= rhs - rest_min  (for <=; equality gives both sides)
                slack = rhs - rest_min
                if a > 0:
                    new_ub = slack / a
                    if new_ub < ub[j] - 1e-9:
                        ub[j] = new_ub
                        changed = True
                        tightened += 1
                else:
                    new_lb = slack / a
                    if new_lb > lb[j] + 1e-9:
                        lb[j] = new_lb
                        changed = True
                        tightened += 1
                if is_equality:
                    rest_max = max_activity - max(a * float(lb[j]), a * float(ub[j]))
                    if math.isfinite(rest_max):
                        slack_low = rhs - rest_max  # a * x_j >= slack_low
                        if a > 0:
                            new_lb = slack_low / a
                            if new_lb > lb[j] + 1e-9:
                                lb[j] = new_lb
                                changed = True
                                tightened += 1
                        else:
                            new_ub = slack_low / a
                            if new_ub < ub[j] - 1e-9:
                                ub[j] = new_ub
                                changed = True
                                tightened += 1
        # Coefficient reduction on <= rows for binary variables.  On
        # ``a_j x_j + R <= b`` with x_j in {0, 1}: whenever the rest of
        # the row can never use the full slack (Rmax < b for a_j > 0),
        # shrinking ``a_j`` to ``a_j - (b - Rmax)`` and ``b`` to ``Rmax``
        # leaves both integer assignments of x_j exactly as constrained
        # as before, while every fractional x_j is constrained harder.
        for i in range(n_ub):
            row = a_ub[i]
            nz = np.nonzero(row)[0]
            if nz.size == 0:
                continue
            for j in nz:
                if not binary[j] or ub[j] - lb[j] != 1.0 or lb[j] != 0.0:
                    continue
                a = row[j]
                rest = nz[nz != j]
                rest_max = float(np.sum(np.where(
                    row[rest] > 0, row[rest] * ub[rest], row[rest] * lb[rest]
                )))
                if not math.isfinite(rest_max):
                    continue
                b = float(b_ub[i])
                if a > 0 and b - rest_max > tol and a > b - rest_max + tol:
                    a_ub[i, j] = a - (b - rest_max)
                    b_ub[i] = rest_max
                    coef_tightened += 1
                    changed = True
                elif a < 0 and rest_max > b + tol and rest_max < b - a - tol:
                    # Complemented form of the same reduction: the new
                    # coefficient is ``b - rest_max`` (< 0), rhs unchanged.
                    a_ub[i, j] = b - rest_max
                    coef_tightened += 1
                    changed = True
        tightened += _round_integral_bounds(lb, ub, integrality, tol)
        if np.any(lb > ub + 1e-7):
            return PresolveResult(
                form=None, proven_infeasible=True,
                tightened_bounds=tightened,
                coefficients_tightened=coef_tightened, rounds=rounds,
            )
        if not changed:
            break

    # Drop <= rows that can never bind under the final bounds.
    redundant = 0
    if n_ub:
        keep = np.ones(n_ub, dtype=bool)
        for i in range(n_ub):
            row = a_ub[i]
            nz = np.nonzero(row)[0]
            max_activity = float(np.sum(np.where(
                row[nz] > 0, row[nz] * ub[nz], row[nz] * lb[nz]
            )))
            if math.isfinite(max_activity) and max_activity <= b_ub[i] + tol:
                keep[i] = False
                redundant += 1
        if redundant:
            a_ub = a_ub[keep]
            b_ub = b_ub[keep]

    reduced = dataclasses.replace(form, a_ub=a_ub, b_ub=b_ub, lb=lb, ub=ub)
    fixed = int(np.sum(np.isfinite(lb) & np.isfinite(ub) & (ub - lb <= tol)))
    return PresolveResult(
        form=reduced, fixed_variables=fixed,
        tightened_bounds=tightened,
        coefficients_tightened=coef_tightened,
        redundant_rows=redundant, rounds=rounds,
    )


def _round_integral_bounds(
    lb: np.ndarray, ub: np.ndarray, integrality: np.ndarray, tol: float
) -> int:
    """Snap integral variables' bounds inward to integers; returns changes."""
    changes = 0
    idx = np.nonzero(integrality)[0]
    for j in idx:
        if math.isfinite(lb[j]):
            snapped = math.ceil(lb[j] - tol)
            if snapped > lb[j] + tol:
                lb[j] = float(snapped)
                changes += 1
        if math.isfinite(ub[j]):
            snapped = math.floor(ub[j] + tol)
            if snapped < ub[j] - tol:
                ub[j] = float(snapped)
                changes += 1
    return changes
