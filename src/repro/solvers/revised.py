"""Bounded-variable revised simplex with warm starts.

This is the incremental LP engine underneath :mod:`repro.solvers.bozo`.
Branch and bound solves hundreds of LP relaxations that differ from their
parent in exactly one variable bound, and the Pareto sweep re-solves
near-identical LPs with only one right-hand side moving.  The dense
two-phase tableau in :mod:`repro.solvers.simplex` rebuilds everything from
scratch on every call; this module instead keeps one
:class:`StandardFormLP` per MILP and re-solves after in-place mutations:

* **Standard form** — rows ``A x = b`` with one logical column per row
  (a slack in ``[0, inf)`` for every ``<=`` row, a fixed artificial in
  ``[0, 0]`` for every ``=`` row), structural variables keeping their
  ``lb <= x <= ub`` boxes.
* **Warm starts** — a solve accepts the final :class:`Basis` of a previous
  solve.  After a *bound* change the old basis stays dual feasible, so a
  handful of dual-simplex pivots restore optimality; after an *objective*
  change it stays primal feasible, so primal simplex finishes the job.
* **Cold starts** — the all-logical basis with each structural variable
  parked on a finite bound, driven to feasibility by a bounded-variable
  primal phase 1 (minimize total infeasibility), then phase 2.  The dual
  simplex is reserved for starts with only a few violated basics — the
  warm-start regime where it shines; deeply infeasible starts crawl under
  dual pivoting, so they take the phase-1 route instead.
* **Fallback** — anything numerically suspicious (singular basis, cycling,
  residual drift, a start that is neither primal nor dual feasible)
  returns :attr:`RevisedStatus.NEEDS_FALLBACK` so callers can re-solve with
  the dense tableau oracle.  :func:`solve_with_fallback` packages that
  policy; correctness never depends on the incremental path.
* **Sparse kernel** — the basis is factorized with
  ``scipy.sparse.linalg.splu`` on the CSC form of the constraint matrix
  and kept current between refactorizations by an eta file of pivot
  updates (:class:`_SparseLUFactor`).  The SOS scheduling MILPs are a few
  nonzeros per row, so the LU of a basis is far cheaper than the dense
  explicit inverse it replaces; when SciPy is unavailable the engine
  silently degrades to the old explicit-inverse kernel
  (:class:`_DenseFactor`) with identical pivoting behavior.
* **Partial pricing** — entering columns are priced over fixed,
  index-ordered column blocks scanned from a rotating block pointer, so
  per-pivot pricing cost stops scaling with the full column count on
  large models.  Models at or below ``PRICING_SINGLE_BLOCK`` columns use
  one block, which is exactly classic full Dantzig pricing; block order
  and in-block argmax tie-breaks are fixed, so pricing stays
  deterministic for any block size.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly by every solve
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse.linalg import splu as _splu

    HAVE_SPARSE = True
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _csc_matrix = None
    _splu = None
    HAVE_SPARSE = False

from repro.milp.model import MatrixForm
from repro.solvers.simplex import LPResult, LPStatus, solve_lp

#: Primal feasibility tolerance on variable bounds.
FEAS_TOL = 1e-7
#: Dual feasibility tolerance on reduced costs.
DUAL_TOL = 1e-7
#: Smallest pivot magnitude accepted without refactorizing first.
PIVOT_TOL = 1e-8
#: Pivots between periodic refactorizations of the basis inverse.
REFACTOR_EVERY = 64
#: Consecutive non-improving pivots before switching to Bland's rule.
STALL_LIMIT = 64
#: Column counts up to this threshold are priced as one block (classic
#: full Dantzig pricing); larger models default to blocks of
#: :data:`PRICING_BLOCK` columns.
PRICING_SINGLE_BLOCK = 512
#: Default pricing block width for models above the single-block cutoff.
PRICING_BLOCK = 256

#: Nonbasic at lower bound.
AT_LB = 0
#: Nonbasic at upper bound.
AT_UB = 1
#: Basic.
BASIC = 2
#: Nonbasic free variable held at zero (only dual feasible when its
#: reduced cost is zero).
AT_FREE = 3


class RevisedStatus(enum.Enum):
    """Outcome of a revised-simplex solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: The incremental path could not finish reliably (numerical trouble,
    #: iteration cap, or a start that was neither primal nor dual
    #: feasible); re-solve with the dense tableau oracle.
    NEEDS_FALLBACK = "needs_fallback"


@dataclasses.dataclass
class Basis:
    """A simplex basis: basic column per row plus every column's status.

    Attributes:
        basic: Shape ``(m,)`` — the column index basic in each row.
        status: Shape ``(N,)`` — one of :data:`AT_LB`, :data:`AT_UB`,
            :data:`BASIC`, :data:`AT_FREE` per column.
    """

    basic: np.ndarray
    status: np.ndarray

    def copy(self) -> "Basis":
        """An independent copy (solves mutate their working basis)."""
        return Basis(self.basic.copy(), self.status.copy())


@dataclasses.dataclass
class PivotCounters:
    """Fine-grained work profile of one revised-simplex solve.

    ``iterations`` on :class:`RevisedResult` is the pivot *total*; these
    counters attribute it to the engine's loops, which is what the
    ``lp_solved`` trace event exposes so per-node LP behavior (dual
    repair vs phase-1 restart vs primal optimization) can be profiled
    from a trace alone.

    Attributes:
        dual_pivots: Pivots spent in the warm-start dual repair loop.
        phase1_pivots: Pivots spent restoring primal feasibility.
        primal_pivots: Pivots spent in the optimizing primal loop.
        refactorizations: Times the basis inverse was rebuilt from scratch.
    """

    dual_pivots: int = 0
    phase1_pivots: int = 0
    primal_pivots: int = 0
    refactorizations: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain mapping form (what the trace event embeds)."""
        return {
            "dual_pivots": self.dual_pivots,
            "phase1_pivots": self.phase1_pivots,
            "primal_pivots": self.primal_pivots,
            "refactorizations": self.refactorizations,
        }


@dataclasses.dataclass
class RevisedResult:
    """Result of :func:`solve_revised`.

    Attributes:
        status: Solve outcome.
        x: Structural-variable values (``None`` unless OPTIMAL).
        objective: ``c @ x + c0`` at the solution (``nan`` otherwise).
        iterations: Simplex pivots performed.
        basis: Final basis for warm-starting the next solve (``None``
            unless OPTIMAL).
        counters: Per-loop pivot attribution (``None`` for results built
            before the engine ran, e.g. trivial infeasibility).
        reduced_costs: Structural-column reduced costs at the optimum,
            captured only when the solve was asked for them (branch and
            bound uses them for reduced-cost fixing); ``None`` otherwise.
    """

    status: RevisedStatus
    x: Optional[np.ndarray]
    objective: float
    iterations: int
    basis: Optional[Basis]
    counters: Optional[PivotCounters] = None
    reduced_costs: Optional[np.ndarray] = None


class StandardFormLP:
    """A computational standard form built once per MILP.

    The form is ``minimize c @ x + c0`` over ``A x = b`` with per-column
    boxes ``lo <= x <= up``.  Columns ``0..n-1`` are the caller's
    structural variables; each ``<=`` row then owns a slack column in
    ``[0, inf)`` and each ``=`` row a fixed artificial column in
    ``[0, 0]``, so the logical block is the identity and any basis drawn
    from it is trivially nonsingular.

    Branch and bound mutates only the structural bounds between solves
    (:meth:`set_bounds`); the Pareto machinery may also retarget the
    objective (:meth:`set_objective`).  The matrix itself never changes.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        c0: float = 0.0,
    ) -> None:
        c = np.asarray(c, dtype=float)
        n = c.shape[0]
        a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
        a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
        b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
        b_eq = np.asarray(b_eq, dtype=float).reshape(-1)
        m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
        m = m_ub + m_eq

        self.n = n
        self.m = m
        self.ncols = n + m
        logical = np.eye(m)
        self.a = np.hstack([np.vstack([a_ub, a_eq]), logical]) if m else np.zeros((0, n))
        self.b = np.concatenate([b_ub, b_eq])
        self.lo = np.concatenate([np.asarray(lb, dtype=float), np.zeros(m)])
        self.up = np.concatenate(
            [np.asarray(ub, dtype=float), np.full(m_ub, np.inf), np.zeros(m_eq)]
        )
        self.cost = np.concatenate([c, np.zeros(m)])
        self.c0 = float(c0)
        self._fingerprint: Optional[str] = None
        self._a_csc = None

    def a_csc(self):
        """CSC view of the full constraint matrix, built once and cached.

        The sparse LU kernel slices basis columns out of this; everything
        row-oriented (pricing products, single-column fetches) stays on
        the dense ``a``, which profiling shows is faster at SOS model
        sizes.  Raises ``RuntimeError`` when SciPy is unavailable —
        callers gate on :data:`HAVE_SPARSE`.
        """
        if _csc_matrix is None:
            raise RuntimeError("scipy is required for the sparse CSC form")
        if self._a_csc is None:
            self._a_csc = _csc_matrix(self.a)
        return self._a_csc

    def fingerprint(self) -> str:
        """Stable hash of the immutable part (matrix + rhs + shape).

        Bounds and objective are excluded — they mutate between solves —
        so one fingerprint identifies the form across the whole life of a
        branch-and-bound tree.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(f"{self.n}:{self.m}".encode())
            digest.update(np.ascontiguousarray(self.a).tobytes())
            digest.update(np.ascontiguousarray(self.b).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @classmethod
    def from_matrix_form(cls, form: MatrixForm) -> "StandardFormLP":
        """Build the standard form of a model's :class:`MatrixForm`."""
        return cls(form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
                   form.lb, form.ub, c0=form.c0)

    @classmethod
    def from_arrays(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        lo: np.ndarray,
        up: np.ndarray,
        cost: np.ndarray,
        c0: float,
        n: int,
        m: int,
        a_csc=None,
    ) -> "StandardFormLP":
        """Adopt already-assembled standard-form arrays without copying.

        The constructor assembles the logical block from scratch; this
        path instead wraps arrays that *are already* in standard form —
        pool workers use it to adopt zero-copy shared-memory views of the
        driver's matrices (see :mod:`repro.solvers.shm`).  ``a`` (and
        ``a_csc`` when given) may be read-only; ``b``/``lo``/``up``/
        ``cost`` must be private to the caller because solves mutate
        bounds (and sweeps objectives) in place.
        """
        sf = cls.__new__(cls)
        sf.n = int(n)
        sf.m = int(m)
        sf.ncols = int(n) + int(m)
        sf.a = a
        sf.b = b
        sf.lo = lo
        sf.up = up
        sf.cost = cost
        sf.c0 = float(c0)
        sf._fingerprint = None
        sf._a_csc = a_csc
        return sf

    def set_bounds(self, lb: np.ndarray, ub: np.ndarray) -> None:
        """Replace the structural variable boxes in place (O(n), no rebuild)."""
        self.lo[: self.n] = lb
        self.up[: self.n] = ub

    def append_ub_rows(self, rows: np.ndarray, rhs: np.ndarray) -> None:
        """Append ``<=`` rows over the structural columns (cut rows).

        Each new row gets its own slack column in ``[0, inf)`` appended
        after the existing logical block, so the invariant "row ``r``'s
        logical column is ``n + r``" survives: old rows keep their old
        logical indices and new row ``m + i`` owns column ``n + m + i``.
        The cached CSC form and fingerprint are invalidated — the matrix
        genuinely changed.  Rows must be expressed purely in structural
        variables (callers substitute slacks out first).
        """
        rows = np.asarray(rows, dtype=float).reshape(-1, self.n)
        rhs = np.asarray(rhs, dtype=float).reshape(-1)
        k = rows.shape[0]
        if k == 0:
            return
        old_cols = self.ncols
        upper = np.hstack([self.a, np.zeros((self.m, k))])
        lower = np.hstack([rows, np.zeros((k, self.m)), np.eye(k)])
        self.a = np.vstack([upper, lower])
        self.b = np.concatenate([self.b, rhs])
        self.lo = np.concatenate([self.lo, np.zeros(k)])
        self.up = np.concatenate([self.up, np.full(k, np.inf)])
        self.cost = np.concatenate([self.cost, np.zeros(k)])
        self.m += k
        self.ncols = old_cols + k
        self._a_csc = None
        self._fingerprint = None

    def set_objective(self, c: np.ndarray, c0: float = 0.0) -> None:
        """Replace the structural objective in place (logicals stay at 0)."""
        self.cost[: self.n] = c
        self.c0 = float(c0)

    def logical_basis(self) -> Basis:
        """The all-logical cold-start basis (trivially nonsingular).

        Every row's logical column is basic.  Each structural column parks
        on the bound matching the sign of its cost when that bound is
        finite (positive cost at the lower bound, negative at the upper) —
        the dual-feasible side — and otherwise on whichever bound exists;
        doubly-unbounded columns start free at zero.  The engine's primal
        phase 1 makes the start usable even when no dual-feasible parking
        exists.
        """
        status = np.empty(self.ncols, dtype=np.int8)
        status[self.n:] = BASIC
        for j in range(self.n):
            cj = self.cost[j]
            lo_ok = math.isfinite(self.lo[j])
            up_ok = math.isfinite(self.up[j])
            if cj > DUAL_TOL:
                status[j] = AT_LB if lo_ok else (AT_UB if up_ok else AT_FREE)
            elif cj < -DUAL_TOL:
                status[j] = AT_UB if up_ok else (AT_LB if lo_ok else AT_FREE)
            elif lo_ok:
                status[j] = AT_LB
            elif up_ok:
                status[j] = AT_UB
            else:
                status[j] = AT_FREE
        basic = self.n + np.arange(self.m, dtype=int)
        return Basis(basic, status)


def extend_basis(basis: Basis, sf: StandardFormLP, added: int) -> Basis:
    """Extend an optimal basis of the pre-append form after ``append_ub_rows``.

    The ``added`` new slack columns become basic in their own rows.  The
    extended basis matrix is block triangular (old basis, identity block),
    so it is nonsingular, and with zero-cost slacks the old reduced costs
    are unchanged — the start stays *dual* feasible and a short dual-simplex
    repair drives the violated cut rows back into their boxes.
    """
    new_rows = sf.m - added + np.arange(added, dtype=int)
    basic = np.concatenate([basis.basic, sf.n + new_rows])
    status = np.concatenate(
        [basis.status, np.full(added, BASIC, dtype=basis.status.dtype)]
    )
    return Basis(basic, status)


class TableauAccess:
    """Read rows of the simplex tableau ``B^{-1} A`` at a given basis.

    The Gomory separator needs the tableau row of each fractional basic
    variable.  This refactorizes the basis once (reusing the engine's
    sparse-LU / dense kernels) and answers each row with one BTRAN plus a
    pricing-style product — no simplex state is touched.
    """

    def __init__(self, sf: StandardFormLP, basis: Basis) -> None:
        self.sf = sf
        self.basis = basis
        self.factor = _SparseLUFactor(sf) if HAVE_SPARSE else _DenseFactor(sf)
        self.ok = self.factor.refactor(basis.basic)

    def row(self, i: int) -> np.ndarray:
        """Tableau row ``i`` over all columns: ``(B^{-1} A)[i, :]``."""
        e = np.zeros(self.sf.m)
        e[i] = 1.0
        return self.factor.btran(e) @ self.sf.a

    def basic_values(self) -> np.ndarray:
        """``x_B = B^{-1}(b - N x_N)`` under the basis's nonbasic statuses."""
        sf = self.sf
        x = np.where(self.basis.status == AT_UB, sf.up, sf.lo)
        x[self.basis.status == AT_FREE] = 0.0
        x[self.basis.status == BASIC] = 0.0
        return self.factor.ftran(sf.b - sf.a @ x)


def solve_revised(
    sf: StandardFormLP,
    basis: Optional[Basis] = None,
    max_iterations: int = 20_000,
    pricing_block_size: int = 0,
    want_reduced_costs: bool = False,
) -> RevisedResult:
    """Solve ``sf``, optionally warm-starting from a previous basis.

    Args:
        sf: The standard form (possibly mutated since the basis was made).
        basis: Final basis of a previous solve of the *same* form; the
            input is copied, never mutated.  ``None`` means cold start
            from the all-logical basis.
        max_iterations: Pivot budget; exceeding it yields NEEDS_FALLBACK.
        pricing_block_size: Partial-pricing block width; ``0`` picks
            automatically (single block at or below
            :data:`PRICING_SINGLE_BLOCK` columns, :data:`PRICING_BLOCK`
            above).
        want_reduced_costs: Capture structural reduced costs on the
            optimal result (costs one extra BTRAN + pricing product).

    Returns:
        A :class:`RevisedResult`; on OPTIMAL its ``basis`` warm-starts the
        next solve after further mutations.
    """
    if np.any(sf.lo > sf.up + FEAS_TOL):
        return RevisedResult(RevisedStatus.INFEASIBLE, None, math.nan, 0, None)
    if sf.m == 0:
        return RevisedResult(RevisedStatus.NEEDS_FALLBACK, None, math.nan, 0, None)
    warm = basis is not None
    if basis is None:
        basis = sf.logical_basis()
    engine = _Engine(
        sf, basis.copy(), max_iterations, warm=warm,
        pricing_block_size=pricing_block_size,
        want_reduced_costs=want_reduced_costs,
    )
    return engine.run()


def solve_with_fallback(
    sf: StandardFormLP,
    basis: Optional[Basis] = None,
    max_iterations: int = 20_000,
    pricing_block_size: int = 0,
    want_reduced_costs: bool = False,
) -> Tuple[LPResult, Optional[Basis], bool]:
    """Solve via the revised path, falling back to the dense tableau.

    This is the policy branch and bound uses per node: try the
    incremental engine (warm when ``basis`` is given); if it signals
    NEEDS_FALLBACK, re-solve cold with :func:`repro.solvers.simplex.solve_lp`,
    which is slower but oracle-grade.

    Returns:
        ``(result, final_basis, fell_back)`` — ``final_basis`` is ``None``
        whenever the dense path produced the result (it has no basis to
        hand to children), and ``fell_back`` says which path answered.
        ``result.reduced_costs`` is populated only when requested *and*
        the revised path answered (the dense oracle does not expose
        duals) — reduced-cost fixing degrades gracefully to off.
    """
    revised = solve_revised(
        sf, basis, max_iterations=max_iterations,
        pricing_block_size=pricing_block_size,
        want_reduced_costs=want_reduced_costs,
    )
    if revised.status is not RevisedStatus.NEEDS_FALLBACK:
        status = {
            RevisedStatus.OPTIMAL: LPStatus.OPTIMAL,
            RevisedStatus.INFEASIBLE: LPStatus.INFEASIBLE,
            RevisedStatus.UNBOUNDED: LPStatus.UNBOUNDED,
        }[revised.status]
        return (
            LPResult(
                status, revised.x, revised.objective, revised.iterations,
                counters=revised.counters,
                reduced_costs=revised.reduced_costs,
            ),
            revised.basis,
            False,
        )
    n = sf.n
    # Select rows by their logical column's box, not by position: appended
    # cut rows put ``<=`` rows after the equality block, so the row order
    # is no longer [ub..., eq...].
    ub_rows = np.isinf(sf.up[n:])
    dense = solve_lp(
        sf.cost[:n],
        sf.a[ub_rows, :n], sf.b[ub_rows],
        sf.a[~ub_rows, :n], sf.b[~ub_rows],
        sf.lo[:n], sf.up[:n], c0=sf.c0,
    )
    return dense, None, True


class _DenseFactor:
    """Explicit-inverse basis kernel — the SciPy-less fallback.

    Keeps ``B^{-1}`` as a dense matrix and applies the classic
    product-form update after each pivot; exactly the representation the
    engine used before the sparse kernel existed.
    """

    def __init__(self, sf: StandardFormLP) -> None:
        self.sf = sf
        self.b_inv: Optional[np.ndarray] = None

    def refactor(self, basic: np.ndarray) -> bool:
        """Rebuild the inverse from scratch; ``False`` if singular."""
        try:
            self.b_inv = np.linalg.inv(self.sf.a[:, basic])
        except np.linalg.LinAlgError:
            return False
        return bool(np.all(np.isfinite(self.b_inv)))

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B x = rhs``."""
        return self.b_inv @ rhs

    def btran(self, u: np.ndarray) -> np.ndarray:
        """Solve ``y B = u`` (equivalently ``B^T y^T = u^T``)."""
        return u @ self.b_inv

    def update(self, row: int, w: np.ndarray) -> None:
        """Product-form update after ``w = ftran(entering column)`` pivots
        into ``row``."""
        pivot = w[row]
        self.b_inv[row] /= pivot
        others = w.copy()
        others[row] = 0.0
        self.b_inv -= np.outer(others, self.b_inv[row])


class _SparseLUFactor:
    """Sparse-LU basis kernel: ``splu`` of the CSC basis plus an eta file.

    A refactorization slices the basic columns out of the form's cached
    CSC matrix and LU-factorizes them (orders of magnitude cheaper than
    the dense explicit inverse on sparse SOS models).  Each pivot appends
    one eta vector ``(row, w)`` with ``w = ftran(entering column)``
    captured *before* the update; FTRAN applies the etas oldest-first
    after the LU solve, BTRAN newest-first before the transposed solve.
    The engine's ``REFACTOR_EVERY`` cadence bounds the eta file, so
    per-solve cost never creeps.
    """

    def __init__(self, sf: StandardFormLP) -> None:
        self.sf = sf
        self.lu = None
        self.etas: List[Tuple[int, np.ndarray]] = []

    def refactor(self, basic: np.ndarray) -> bool:
        """Factorize the basis from scratch; ``False`` means singular."""
        self.etas.clear()
        try:
            self.lu = _splu(self.sf.a_csc()[:, basic].tocsc())
        except RuntimeError:  # "Factor is exactly singular"
            return False
        probe = self.lu.solve(np.ones(self.sf.m))
        return bool(np.all(np.isfinite(probe)))

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B x = rhs`` through the LU factors, then the eta file."""
        x = self.lu.solve(np.asarray(rhs, dtype=float))
        for row, w in self.etas:
            pivot = x[row] / w[row]
            x -= w * pivot
            x[row] = pivot
        return x

    def btran(self, u: np.ndarray) -> np.ndarray:
        """Solve ``y B = u``: eta file newest-first, then ``L U`` transposed."""
        u = np.array(u, dtype=float)
        for row, w in reversed(self.etas):
            u[row] += (u[row] - u @ w) / w[row]
        return self.lu.solve(u, trans="T")

    def update(self, row: int, w: np.ndarray) -> None:
        """Append one eta vector for the pivot of ``w`` into ``row``."""
        self.etas.append((row, w.copy()))


class _Engine:
    """One revised-simplex solve: state, pivots, and the two pivot rules."""

    def __init__(
        self,
        sf: StandardFormLP,
        basis: Basis,
        max_iterations: int,
        warm: bool = False,
        pricing_block_size: int = 0,
        want_reduced_costs: bool = False,
    ) -> None:
        self.sf = sf
        self.basic = basis.basic
        self.status = basis.status
        self.max_iterations = max_iterations
        self.warm = warm
        self.want_reduced_costs = want_reduced_costs
        self.iterations = 0
        self.counters = PivotCounters()
        self.factor = _SparseLUFactor(sf) if HAVE_SPARSE else _DenseFactor(sf)
        self.x_basic: Optional[np.ndarray] = None
        # Columns that can never move: fixed boxes (includes eq artificials).
        self.fixed = np.isfinite(sf.lo) & np.isfinite(sf.up) & (sf.up - sf.lo <= FEAS_TOL)
        if pricing_block_size > 0:
            width = pricing_block_size
        elif sf.ncols <= PRICING_SINGLE_BLOCK:
            width = sf.ncols
        else:
            width = PRICING_BLOCK
        self._blocks = [
            (start, min(start + width, sf.ncols))
            for start in range(0, sf.ncols, width)
        ]
        self._pblock = 0  # rotating pointer: block where pricing starts

    # -- linear algebra -----------------------------------------------------
    def refactor(self) -> bool:
        """Refactorize the basis from scratch; False if singular."""
        self.counters.refactorizations += 1
        return self.factor.refactor(self.basic)

    def nonbasic_point(self) -> np.ndarray:
        """Full-length x with every nonbasic column at its status value."""
        sf = self.sf
        x = np.where(self.status == AT_UB, sf.up, sf.lo)
        x[self.status == AT_FREE] = 0.0
        x[self.status == BASIC] = 0.0
        return x

    def recompute_basics(self) -> None:
        """x_B = B^{-1} (b - N x_N) from the current statuses."""
        x = self.nonbasic_point()
        rhs = self.sf.b - self.sf.a @ x
        self.x_basic = self.factor.ftran(rhs)

    def reduced_costs(self) -> np.ndarray:
        """d = c - c_B B^{-1} A over all columns."""
        y = self.factor.btran(self.sf.cost[self.basic])
        return self.sf.cost - y @ self.sf.a

    # -- pricing ------------------------------------------------------------
    def _price(
        self, y: np.ndarray, phase1: bool, use_bland: bool
    ) -> Optional[Tuple[int, float]]:
        """Deterministic partial pricing: pick the entering column.

        Scans the fixed, index-ordered column blocks and returns
        ``(entering, d_entering)`` from the first block holding an
        improving column, or ``None`` at (phase-specific) optimality.
        Dantzig mode starts at the rotating pointer ``_pblock`` (left on
        the last productive block) and takes the in-block argmax of
        ``|d|`` — ``np.argmax`` resolves ties to the lowest index; Bland
        mode always scans from block 0 and takes the globally lowest
        improving index, preserving the anti-cycling guarantee.  With a
        single block both modes reduce to their classic full-pricing
        forms.
        """
        sf = self.sf
        nblocks = len(self._blocks)
        if use_bland or nblocks == 1:
            order = range(nblocks)
        else:
            order = [(self._pblock + i) % nblocks for i in range(nblocks)]
        for bi in order:
            start, stop = self._blocks[bi]
            if phase1:
                d = -(y @ sf.a[:, start:stop])
            else:
                d = sf.cost[start:stop] - y @ sf.a[:, start:stop]
            stat = self.status[start:stop]
            movable = ~self.fixed[start:stop] & (stat != BASIC)
            improving = movable & (
                ((stat == AT_LB) & (d < -DUAL_TOL))
                | ((stat == AT_UB) & (d > DUAL_TOL))
                | ((stat == AT_FREE) & (np.abs(d) > DUAL_TOL))
            )
            indices = np.nonzero(improving)[0]
            if indices.size == 0:
                continue
            if use_bland:
                local = int(indices[0])
            else:
                local = int(indices[np.argmax(np.abs(d[indices]))])
                self._pblock = bi
            return start + local, float(d[local])
        return None

    # -- feasibility checks -------------------------------------------------
    def primal_violations(self) -> np.ndarray:
        """Signed bound violation of each basic variable (0 when feasible)."""
        lo_b = self.sf.lo[self.basic]
        up_b = self.sf.up[self.basic]
        below = np.minimum(self.x_basic - lo_b, 0.0)
        above = np.maximum(self.x_basic - up_b, 0.0)
        return below + above

    def dual_feasible(self, d: np.ndarray) -> bool:
        """Check sign conditions of reduced costs against statuses."""
        movable = ~self.fixed
        at_lb = (self.status == AT_LB) & movable
        at_ub = (self.status == AT_UB) & movable
        at_free = self.status == AT_FREE
        if np.any(d[at_lb] < -DUAL_TOL):
            return False
        if np.any(d[at_ub] > DUAL_TOL):
            return False
        if np.any(np.abs(d[at_free]) > DUAL_TOL):
            return False
        return True

    # -- driver -------------------------------------------------------------
    def run(self) -> RevisedResult:
        """Restore primal feasibility, then primal simplex to optimality.

        A warm start whose reduced costs are still sign-feasible (the
        regime after a branch-and-bound bound change) is repaired by the
        dual simplex — the violations are few and shallow, exactly where
        dual pivoting shines.  Everything else — a cold start, or a basis
        invalidated by an objective change — goes through primal phase 1,
        which reaches feasibility in few pivots on the deeply infeasible
        starts that make dual pivoting crawl.
        """
        if not self.refactor():
            return self._bail()
        self.recompute_basics()
        violations = self.primal_violations()
        counters = self.counters
        if np.any(np.abs(violations) > FEAS_TOL):
            if self.warm and self.dual_feasible(self.reduced_costs()):
                before = self.iterations
                status = self.dual_loop()
                counters.dual_pivots += self.iterations - before
                if status is not None:
                    return status
            # Phase 1 is a no-op when the dual loop already restored
            # feasibility; it takes over when the start was not dual
            # feasible or the dual loop gave up its budget mid-repair.
            before = self.iterations
            status = self.phase1_loop()
            counters.phase1_pivots += self.iterations - before
            if status is not None:
                return status
        before = self.iterations
        status = self.primal_loop()
        counters.primal_pivots += self.iterations - before
        if status is not None:
            return status
        return self.finish()

    def _bail(self) -> RevisedResult:
        return RevisedResult(
            RevisedStatus.NEEDS_FALLBACK, None, math.nan, self.iterations, None,
            counters=self.counters,
        )

    def finish(self) -> RevisedResult:
        """Assemble and verify the optimal point; drift means fallback."""
        sf = self.sf
        x = self.nonbasic_point()
        x[self.basic] = self.x_basic
        scale = 1.0 + float(np.max(np.abs(sf.b))) if sf.b.size else 1.0
        residual = float(np.max(np.abs(sf.a @ x - sf.b))) if sf.m else 0.0
        if residual > 1e-6 * scale:
            return self._bail()
        if np.any(x < sf.lo - 1e-6) or np.any(x > sf.up + 1e-6):
            return self._bail()
        structural = x[: sf.n].copy()
        objective = float(sf.cost[: sf.n] @ structural) + sf.c0
        reduced = None
        if self.want_reduced_costs:
            reduced = self.reduced_costs()[: sf.n].copy()
        return RevisedResult(
            RevisedStatus.OPTIMAL, structural, objective, self.iterations,
            Basis(self.basic.copy(), self.status.copy()),
            counters=self.counters,
            reduced_costs=reduced,
        )

    # -- dual simplex -------------------------------------------------------
    def dual_loop(self) -> Optional[RevisedResult]:
        """Pivot until every basic variable is inside its box.

        Requires a dual-feasible start; preserves dual feasibility, so on
        exit (primal feasible too) the basis is optimal.  A warm repair
        normally takes a handful of pivots, so the loop runs on a short
        budget: exhausting it means the start was degenerate enough to
        crawl, and the engine abandons the dual route mid-repair (the
        basis stays valid) and lets primal phase 1 finish the job.
        Returns a final result only on infeasibility or trouble; ``None``
        means "continue with the primal machinery".
        """
        sf = self.sf
        since_refactor = 0
        budget = self.iterations + min(self.max_iterations, max(sf.m // 2, 100))
        while True:
            violations = self.primal_violations()
            worst = int(np.argmax(np.abs(violations)))
            if abs(violations[worst]) <= FEAS_TOL:
                return None
            if self.iterations >= self.max_iterations:
                return self._bail()
            if self.iterations >= budget:
                return None  # crawling — hand the basis to phase 1

            row = worst
            leaving = self.basic[row]
            below = violations[row] < 0  # leaving variable returns to its lb
            e_row = np.zeros(sf.m)
            e_row[row] = 1.0
            alpha = self.factor.btran(e_row) @ sf.a
            # Entering candidates must keep d sign-feasible after the pivot.
            direction = -alpha if below else alpha
            d = self.reduced_costs()
            movable = ~self.fixed & (self.status != BASIC)
            eligible = movable & (
                ((self.status == AT_LB) & (direction > PIVOT_TOL))
                | ((self.status == AT_UB) & (direction < -PIVOT_TOL))
                | ((self.status == AT_FREE) & (np.abs(direction) > PIVOT_TOL))
            )
            idx = np.nonzero(eligible)[0]
            if idx.size == 0:
                return RevisedResult(
                    RevisedStatus.INFEASIBLE, None, math.nan, self.iterations, None
                )
            ratios = np.abs(d[idx]) / np.abs(direction[idx])
            best = float(ratios.min())
            entering = int(idx[ratios <= best + DUAL_TOL].min())

            w = self.factor.ftran(sf.a[:, entering])
            if abs(w[row]) < PIVOT_TOL:
                if not self.refactor():
                    return self._bail()
                self.recompute_basics()
                w = self.factor.ftran(sf.a[:, entering])
                if abs(w[row]) < PIVOT_TOL:
                    return self._bail()
            self.status[entering] = BASIC
            self.status[leaving] = AT_LB if below else AT_UB
            self.basic[row] = entering
            self.factor.update(row, w)
            self.iterations += 1
            since_refactor += 1
            if since_refactor >= REFACTOR_EVERY:
                if not self.refactor():
                    return self._bail()
                since_refactor = 0
            self.recompute_basics()

    # -- primal phase 1 -----------------------------------------------------
    def phase1_loop(self) -> Optional[RevisedResult]:
        """Drive total bound infeasibility of the basics to zero.

        Bounded-variable composite phase 1: minimize the sum of bound
        violations of the basic variables, whose gradient is ``-1`` for a
        basic below its lower bound and ``+1`` above its upper.  Pivots are
        short-step — the entering variable blocks at the first breakpoint,
        which includes an infeasible basic *reaching* its violated bound
        (it leaves the basis feasible).  Returns ``None`` once primal
        feasible; a local optimum with residual infeasibility yields
        NEEDS_FALLBACK so the dense oracle delivers the verdict.
        """
        sf = self.sf
        since_refactor = 0
        stall = 0
        use_bland = False
        last_infeas = math.inf
        while True:
            violations = self.primal_violations()
            below = violations < -FEAS_TOL
            above = violations > FEAS_TOL
            infeas = float(np.sum(np.abs(violations[below | above])))
            if not below.any() and not above.any():
                return None
            if self.iterations >= self.max_iterations:
                return self._bail()

            # Phase-1 reduced costs: d_j = -w_B B^{-1} A_j (w is the
            # infeasibility gradient, zero on every nonbasic column).
            w_basic = np.zeros(sf.m)
            w_basic[below] = -1.0
            w_basic[above] = 1.0
            y = self.factor.btran(w_basic)
            candidate = self._price(y, phase1=True, use_bland=use_bland)
            if candidate is None:
                # Local (hence global) phase-1 optimum with residual
                # infeasibility; let the oracle certify infeasibility.
                return self._bail()
            entering, d_entering = candidate
            if self.status[entering] == AT_UB or (
                self.status[entering] == AT_FREE and d_entering > 0
            ):
                sign = -1.0
            else:
                sign = 1.0

            w = self.factor.ftran(sf.a[:, entering])
            delta = sign * w  # basic variables move by -delta per unit step
            lo_b = sf.lo[self.basic]
            up_b = sf.up[self.basic]
            inside = ~below & ~above
            xv = self.x_basic
            steps = np.full(sf.m, np.inf)
            dec = delta > PIVOT_TOL  # basic decreases as the step grows
            inc = delta < -PIVOT_TOL  # basic increases
            # Breakpoints: a feasible basic blocks at the bound it would
            # cross; an infeasible one blocks where it regains feasibility.
            mask = dec & above
            steps[mask] = (xv[mask] - up_b[mask]) / delta[mask]
            mask = dec & inside
            steps[mask] = (xv[mask] - lo_b[mask]) / delta[mask]
            mask = inc & below
            steps[mask] = (xv[mask] - lo_b[mask]) / delta[mask]
            mask = inc & inside
            steps[mask] = (xv[mask] - up_b[mask]) / delta[mask]
            steps[~np.isfinite(steps)] = np.inf
            span = sf.up[entering] - sf.lo[entering]
            limit = float(np.min(steps)) if sf.m else math.inf
            step = min(limit, span)
            if not math.isfinite(step):
                return self._bail()
            step = max(step, 0.0)

            if span <= limit:
                self.x_basic = self.x_basic - delta * step
                self.status[entering] = AT_UB if sign > 0 else AT_LB
                self.iterations += 1
            else:
                blocking = np.nonzero(steps <= step + FEAS_TOL)[0]
                if use_bland:
                    row = int(min(blocking, key=lambda i: self.basic[i]))
                else:
                    row = int(blocking[np.argmax(np.abs(delta[blocking]))])
                leaving = self.basic[row]
                if abs(w[row]) < PIVOT_TOL:
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()
                    continue
                entering_value = (
                    (sf.up[entering] if self.status[entering] == AT_UB else
                     0.0 if self.status[entering] == AT_FREE else sf.lo[entering])
                    + sign * step
                )
                if delta[row] > 0:
                    leave_status = AT_UB if above[row] else AT_LB
                else:
                    leave_status = AT_LB if below[row] else AT_UB
                self.x_basic = self.x_basic - delta * step
                self.x_basic[row] = entering_value
                self.status[entering] = BASIC
                self.status[leaving] = leave_status
                self.basic[row] = entering
                self.factor.update(row, w)
                self.iterations += 1
                since_refactor += 1
                if since_refactor >= REFACTOR_EVERY:
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()
                    since_refactor = 0

            if infeas < last_infeas - FEAS_TOL:
                stall = 0
                last_infeas = infeas
            else:
                stall += 1
                if stall >= STALL_LIMIT:
                    use_bland = True

    # -- primal simplex -----------------------------------------------------
    def primal_loop(self) -> Optional[RevisedResult]:
        """Pivot from a primal-feasible basis until no column improves.

        Dantzig pricing with a switch to Bland's rule after a stall (the
        classic anti-cycling safeguard).  Returns a final result only on
        unboundedness or trouble; ``None`` means "optimal, go finish".
        """
        sf = self.sf
        since_refactor = 0
        stall = 0
        use_bland = False
        last_objective = math.inf
        while True:
            if self.iterations >= self.max_iterations:
                return self._bail()
            y = self.factor.btran(sf.cost[self.basic])
            candidate = self._price(y, phase1=False, use_bland=use_bland)
            if candidate is None:
                return None
            entering, d_entering = candidate
            # Direction of travel: increase from lb (or free with d<0),
            # decrease from ub (or free with d>0).
            if self.status[entering] == AT_UB or (
                self.status[entering] == AT_FREE and d_entering > 0
            ):
                sign = -1.0
            else:
                sign = 1.0

            w = self.factor.ftran(sf.a[:, entering])
            delta = sign * w  # basic variables move by -delta per unit step
            lo_b = self.sf.lo[self.basic]
            up_b = self.sf.up[self.basic]
            # Blocking step for each basic variable.
            steps = np.full(sf.m, np.inf)
            decreasing = delta > PIVOT_TOL
            increasing = delta < -PIVOT_TOL
            steps[decreasing] = (self.x_basic[decreasing] - lo_b[decreasing]) / delta[decreasing]
            steps[increasing] = (self.x_basic[increasing] - up_b[increasing]) / delta[increasing]
            span = sf.up[entering] - sf.lo[entering]
            limit = float(np.min(steps)) if sf.m else math.inf
            step = min(limit, span)
            if not math.isfinite(step):
                return RevisedResult(
                    RevisedStatus.UNBOUNDED, None, math.nan, self.iterations, None
                )
            step = max(step, 0.0)

            if span <= limit:
                # Bound flip: the entering variable crosses its whole box.
                self.x_basic = self.x_basic - delta * step
                self.status[entering] = AT_UB if sign > 0 else AT_LB
                self.iterations += 1
            else:
                blocking = np.nonzero(steps <= step + FEAS_TOL)[0]
                if use_bland:
                    row = int(min(blocking, key=lambda i: self.basic[i]))
                else:
                    row = int(blocking[np.argmax(np.abs(delta[blocking]))])
                leaving = self.basic[row]
                if abs(w[row]) < PIVOT_TOL:
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()
                    continue
                entering_value = (
                    (sf.up[entering] if self.status[entering] == AT_UB else
                     0.0 if self.status[entering] == AT_FREE else sf.lo[entering])
                    + sign * step
                )
                self.x_basic = self.x_basic - delta * step
                self.x_basic[row] = entering_value
                self.status[entering] = BASIC
                self.status[leaving] = AT_LB if delta[row] > 0 else AT_UB
                if not math.isfinite(sf.lo[leaving]) and not math.isfinite(sf.up[leaving]):
                    self.status[leaving] = AT_FREE
                self.basic[row] = entering
                self.factor.update(row, w)
                self.iterations += 1
                since_refactor += 1
                if since_refactor >= REFACTOR_EVERY:
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()
                    since_refactor = 0

            objective = float(sf.cost[self.basic] @ self.x_basic)
            if objective < last_objective - DUAL_TOL:
                stall = 0
                last_objective = objective
            else:
                stall += 1
                if stall >= STALL_LIMIT:
                    use_bland = True
