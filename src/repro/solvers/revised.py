"""Bounded-variable revised simplex with warm starts.

This is the incremental LP engine underneath :mod:`repro.solvers.bozo`.
Branch and bound solves hundreds of LP relaxations that differ from their
parent in exactly one variable bound, and the Pareto sweep re-solves
near-identical LPs with only one right-hand side moving.  The dense
two-phase tableau in :mod:`repro.solvers.simplex` rebuilds everything from
scratch on every call; this module instead keeps one
:class:`StandardFormLP` per MILP and re-solves after in-place mutations:

* **Standard form** — rows ``A x = b`` with one logical column per row
  (a slack in ``[0, inf)`` for every ``<=`` row, a fixed artificial in
  ``[0, 0]`` for every ``=`` row), structural variables keeping their
  ``lb <= x <= ub`` boxes.
* **Warm starts** — a solve accepts the final :class:`Basis` of a previous
  solve.  After a *bound* change the old basis stays dual feasible, so a
  handful of dual-simplex pivots restore optimality; after an *objective*
  change it stays primal feasible, so primal simplex finishes the job.
* **Cold starts** — the all-logical basis with each structural variable
  parked on a finite bound, driven to feasibility by a bounded-variable
  primal phase 1 (minimize total infeasibility), then phase 2.  The dual
  simplex is reserved for starts with only a few violated basics — the
  warm-start regime where it shines; deeply infeasible starts crawl under
  dual pivoting, so they take the phase-1 route instead.
* **Fallback** — anything numerically suspicious (singular basis, cycling,
  residual drift, a start that is neither primal nor dual feasible)
  returns :attr:`RevisedStatus.NEEDS_FALLBACK` so callers can re-solve with
  the dense tableau oracle.  :func:`solve_with_fallback` packages that
  policy; correctness never depends on the incremental path.
* **Two basis kernels** — bases above :data:`DENSE_KERNEL_MAX` rows are
  factorized with ``scipy.sparse.linalg.splu`` on the CSC form of the
  constraint matrix and kept current between refactorizations by an eta
  file of pivot updates whose vectors are stored on their nonzero support
  (:class:`_SparseLUFactor`).  Small bases — the few-row LPs that
  dominate branch-and-bound node throughput — use the explicit dense
  inverse (:class:`_DenseFactor`), which both factorizes and solves
  several times faster below roughly a hundred rows and answers BTRANs of
  unit vectors by a plain row read.  When SciPy is unavailable every size
  runs on the dense kernel.
* **Refactorization policy** — instead of a fixed pivot cadence, the
  sparse kernel refactorizes when the eta file's accumulated fill
  (:data:`ETA_FILL_FACTOR` nonzeros per row) or length
  (:data:`ETA_MAX_UPDATES`) makes applying it costlier than a fresh
  factorization, and either kernel refactorizes immediately when the
  pivot element seen from the row (BTRAN) and column (FTRAN) sides
  drifts — a direct numerical-error signal.
* **Pricing** — the default rule is devex reference-framework pricing
  (``SolverOptions.pricing="devex"``): the dual loop picks the leaving
  row by weighted violation and the primal loop maintains the full
  reduced-cost vector incrementally, choosing the entering column by
  ``d^2 / weight`` with deterministic (lowest-index) tie-breaks.  Weight
  updates use only quantities the pivot already computes.  The previous
  partial-Dantzig block pricing is retained under ``pricing="dantzig"``:
  entering columns are priced over fixed, index-ordered column blocks
  scanned from a rotating block pointer (models at or below
  :data:`PRICING_SINGLE_BLOCK` columns use one block, which is exactly
  classic full Dantzig pricing).  Both rules are deterministic, so
  serial/parallel byte-identity holds under either.
* **Bound-flipping dual ratio test** — the dual loop walks the sorted
  ratio-test breakpoints and *flips* every boxed candidate whose flip
  keeps the dual slope positive, entering only at the blocking
  breakpoint.  On 0/1 scheduling MILPs most candidates sit on a bound,
  so a single dual pivot absorbs what would otherwise be a chain of
  degenerate pivots; flipped columns are folded into one aggregated
  FTRAN.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly by every solve
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse.linalg import splu as _splu

    HAVE_SPARSE = True
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _csc_matrix = None
    _splu = None
    HAVE_SPARSE = False

from repro.milp.model import MatrixForm
from repro.solvers.simplex import LPResult, LPStatus, solve_lp

#: Primal feasibility tolerance on variable bounds.
FEAS_TOL = 1e-7
#: Dual feasibility tolerance on reduced costs.
DUAL_TOL = 1e-7
#: Smallest pivot magnitude accepted without refactorizing first.
PIVOT_TOL = 1e-8
#: Dense-kernel pivot cadence (the explicit inverse accumulates rank-one
#: update error, so it refactorizes on a fixed schedule).
REFACTOR_EVERY = 64
#: Consecutive non-improving pivots before switching to Bland's rule.
STALL_LIMIT = 64
#: Column counts up to this threshold are priced as one block in dantzig
#: mode (classic full Dantzig pricing); larger models default to blocks
#: of :data:`PRICING_BLOCK` columns.
PRICING_SINGLE_BLOCK = 512
#: Default pricing block width for models above the single-block cutoff.
PRICING_BLOCK = 256
#: Bases at or below this many rows use the explicit dense inverse; the
#: crossover where ``splu`` beats ``np.linalg.inv`` (and LU solves beat
#: dense matvecs) sits near one hundred rows on SOS-shaped bases.
DENSE_KERNEL_MAX = 96
#: Sparse kernel: refactorize when the eta file holds this many updates.
ETA_MAX_UPDATES = 128
#: Sparse kernel: refactorize when accumulated eta nonzeros exceed this
#: many multiples of the row count — the point where applying the eta
#: file rivals the cost of a fresh factorization.
ETA_FILL_FACTOR = 6
#: Relative row-vs-column pivot disagreement that forces a refactorization.
DRIFT_TOL = 1e-7
#: Devex weights above this trigger a reference-framework reset.
DEVEX_RESET_LIMIT = 1e8
#: Bases at or below this many rows take the scalar micro kernel for warm
#: repairs: at a handful of rows every numpy call costs more than the
#: arithmetic it performs, so the hot branch-and-bound path runs on plain
#: Python floats and falls back to the vector engine for anything it
#: cannot certify.
MICRO_KERNEL_MAX = 16
#: Pivot budget of one micro-kernel repair; exhausting it hands the basis
#: to the general engine (same role as the dual loop's crawl budget).
MICRO_BUDGET = 100

#: Nonbasic at lower bound.
AT_LB = 0
#: Nonbasic at upper bound.
AT_UB = 1
#: Basic.
BASIC = 2
#: Nonbasic free variable held at zero (only dual feasible when its
#: reduced cost is zero).
AT_FREE = 3


class RevisedStatus(enum.Enum):
    """Outcome of a revised-simplex solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: The incremental path could not finish reliably (numerical trouble,
    #: iteration cap, or a start that was neither primal nor dual
    #: feasible); re-solve with the dense tableau oracle.
    NEEDS_FALLBACK = "needs_fallback"


@dataclasses.dataclass
class Basis:
    """A simplex basis: basic column per row plus every column's status.

    Attributes:
        basic: Shape ``(m,)`` — the column index basic in each row.
        status: Shape ``(N,)`` — one of :data:`AT_LB`, :data:`AT_UB`,
            :data:`BASIC`, :data:`AT_FREE` per column.
    """

    basic: np.ndarray
    status: np.ndarray

    def copy(self) -> "Basis":
        """An independent copy (solves mutate their working basis)."""
        return Basis(self.basic.copy(), self.status.copy())


@dataclasses.dataclass
class PivotCounters:
    """Fine-grained work profile of one revised-simplex solve.

    ``iterations`` on :class:`RevisedResult` is the pivot *total*; these
    counters attribute it to the engine's loops, which is what the
    ``lp_solved`` trace event exposes so per-node LP behavior (dual
    repair vs phase-1 restart vs primal optimization) can be profiled
    from a trace alone.

    Attributes:
        dual_pivots: Pivots spent in the warm-start dual repair loop.
        phase1_pivots: Pivots spent restoring primal feasibility.
        primal_pivots: Pivots spent in the optimizing primal loop.
        refactorizations: Times the basis inverse was rebuilt from scratch.
        bound_flips: Nonbasic bound-to-bound moves (dual ratio-test flips
            plus primal/phase-1 full-box steps) that avoided a pivot.
        devex_resets: Devex reference-framework resets, counting the
            initialization of each loop's weights (zero under dantzig
            pricing).
        ftran_sparsity: Entering-column FTRAN results whose nonzero count
            stayed at or below half the row count — the hypersparse
            regime where eta updates touch only a slice of the basis.
    """

    dual_pivots: int = 0
    phase1_pivots: int = 0
    primal_pivots: int = 0
    refactorizations: int = 0
    bound_flips: int = 0
    devex_resets: int = 0
    ftran_sparsity: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain mapping form (what the trace event embeds)."""
        return {
            "dual_pivots": self.dual_pivots,
            "phase1_pivots": self.phase1_pivots,
            "primal_pivots": self.primal_pivots,
            "refactorizations": self.refactorizations,
            "bound_flips": self.bound_flips,
            "devex_resets": self.devex_resets,
            "ftran_sparsity": self.ftran_sparsity,
        }


@dataclasses.dataclass
class RevisedResult:
    """Result of :func:`solve_revised`.

    Attributes:
        status: Solve outcome.
        x: Structural-variable values (``None`` unless OPTIMAL).
        objective: ``c @ x + c0`` at the solution (``nan`` otherwise).
        iterations: Simplex pivots performed.
        basis: Final basis for warm-starting the next solve (``None``
            unless OPTIMAL).
        counters: Per-loop pivot attribution (``None`` for results built
            before the engine ran, e.g. trivial infeasibility).
        reduced_costs: Structural-column reduced costs at the optimum,
            captured only when the solve was asked for them (branch and
            bound uses them for reduced-cost fixing); ``None`` otherwise.
    """

    status: RevisedStatus
    x: Optional[np.ndarray]
    objective: float
    iterations: int
    basis: Optional[Basis]
    counters: Optional[PivotCounters] = None
    reduced_costs: Optional[np.ndarray] = None


class StandardFormLP:
    """A computational standard form built once per MILP.

    The form is ``minimize c @ x + c0`` over ``A x = b`` with per-column
    boxes ``lo <= x <= up``.  Columns ``0..n-1`` are the caller's
    structural variables; each ``<=`` row then owns a slack column in
    ``[0, inf)`` and each ``=`` row a fixed artificial column in
    ``[0, 0]``, so the logical block is the identity and any basis drawn
    from it is trivially nonsingular.

    Branch and bound mutates only the structural bounds between solves
    (:meth:`set_bounds`); the Pareto machinery may also retarget the
    objective (:meth:`set_objective`).  The matrix itself never changes.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        c0: float = 0.0,
    ) -> None:
        c = np.asarray(c, dtype=float)
        n = c.shape[0]
        a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
        a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
        b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
        b_eq = np.asarray(b_eq, dtype=float).reshape(-1)
        m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
        m = m_ub + m_eq

        self.n = n
        self.m = m
        self.ncols = n + m
        logical = np.eye(m)
        self.a = np.hstack([np.vstack([a_ub, a_eq]), logical]) if m else np.zeros((0, n))
        self.b = np.concatenate([b_ub, b_eq])
        self.lo = np.concatenate([np.asarray(lb, dtype=float), np.zeros(m)])
        self.up = np.concatenate(
            [np.asarray(ub, dtype=float), np.full(m_ub, np.inf), np.zeros(m_eq)]
        )
        self.cost = np.concatenate([c, np.zeros(m)])
        self.c0 = float(c0)
        self._fingerprint: Optional[str] = None
        self._a_csc = None

    def a_csc(self):
        """CSC view of the full constraint matrix, built once and cached.

        The sparse LU kernel slices basis columns out of this; everything
        row-oriented (pricing products, single-column fetches) stays on
        the dense ``a``, which profiling shows is faster at SOS model
        sizes.  Raises ``RuntimeError`` when SciPy is unavailable —
        callers gate on :data:`HAVE_SPARSE`.
        """
        if _csc_matrix is None:
            raise RuntimeError("scipy is required for the sparse CSC form")
        if self._a_csc is None:
            self._a_csc = _csc_matrix(self.a)
        return self._a_csc

    def fingerprint(self) -> str:
        """Stable hash of the immutable part (matrix + rhs + shape).

        Bounds and objective are excluded — they mutate between solves —
        so one fingerprint identifies the form across the whole life of a
        branch-and-bound tree.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(f"{self.n}:{self.m}".encode())
            digest.update(np.ascontiguousarray(self.a).tobytes())
            digest.update(np.ascontiguousarray(self.b).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @classmethod
    def from_matrix_form(cls, form: MatrixForm) -> "StandardFormLP":
        """Build the standard form of a model's :class:`MatrixForm`."""
        return cls(form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
                   form.lb, form.ub, c0=form.c0)

    @classmethod
    def from_arrays(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        lo: np.ndarray,
        up: np.ndarray,
        cost: np.ndarray,
        c0: float,
        n: int,
        m: int,
        a_csc=None,
    ) -> "StandardFormLP":
        """Adopt already-assembled standard-form arrays without copying.

        The constructor assembles the logical block from scratch; this
        path instead wraps arrays that *are already* in standard form —
        pool workers use it to adopt zero-copy shared-memory views of the
        driver's matrices (see :mod:`repro.solvers.shm`).  ``a`` (and
        ``a_csc`` when given) may be read-only; ``b``/``lo``/``up``/
        ``cost`` must be private to the caller because solves mutate
        bounds (and sweeps objectives) in place.
        """
        sf = cls.__new__(cls)
        sf.n = int(n)
        sf.m = int(m)
        sf.ncols = int(n) + int(m)
        sf.a = a
        sf.b = b
        sf.lo = lo
        sf.up = up
        sf.cost = cost
        sf.c0 = float(c0)
        sf._fingerprint = None
        sf._a_csc = a_csc
        return sf

    def set_bounds(self, lb: np.ndarray, ub: np.ndarray) -> None:
        """Replace the structural variable boxes in place (O(n), no rebuild)."""
        self.lo[: self.n] = lb
        self.up[: self.n] = ub

    def append_ub_rows(self, rows: np.ndarray, rhs: np.ndarray) -> None:
        """Append ``<=`` rows over the structural columns (cut rows).

        Each new row gets its own slack column in ``[0, inf)`` appended
        after the existing logical block, so the invariant "row ``r``'s
        logical column is ``n + r``" survives: old rows keep their old
        logical indices and new row ``m + i`` owns column ``n + m + i``.
        The cached CSC form and fingerprint are invalidated — the matrix
        genuinely changed.  Rows must be expressed purely in structural
        variables (callers substitute slacks out first).
        """
        rows = np.asarray(rows, dtype=float).reshape(-1, self.n)
        rhs = np.asarray(rhs, dtype=float).reshape(-1)
        k = rows.shape[0]
        if k == 0:
            return
        old_cols = self.ncols
        upper = np.hstack([self.a, np.zeros((self.m, k))])
        lower = np.hstack([rows, np.zeros((k, self.m)), np.eye(k)])
        self.a = np.vstack([upper, lower])
        self.b = np.concatenate([self.b, rhs])
        self.lo = np.concatenate([self.lo, np.zeros(k)])
        self.up = np.concatenate([self.up, np.full(k, np.inf)])
        self.cost = np.concatenate([self.cost, np.zeros(k)])
        self.m += k
        self.ncols = old_cols + k
        self._a_csc = None
        self._fingerprint = None

    def set_objective(self, c: np.ndarray, c0: float = 0.0) -> None:
        """Replace the structural objective in place (logicals stay at 0)."""
        self.cost[: self.n] = c
        self.c0 = float(c0)

    def logical_basis(self) -> Basis:
        """The all-logical cold-start basis (trivially nonsingular).

        Every row's logical column is basic.  Each structural column parks
        on the bound matching the sign of its cost when that bound is
        finite (positive cost at the lower bound, negative at the upper) —
        the dual-feasible side — and otherwise on whichever bound exists;
        doubly-unbounded columns start free at zero.  The engine's primal
        phase 1 makes the start usable even when no dual-feasible parking
        exists.
        """
        status = np.empty(self.ncols, dtype=np.int8)
        status[self.n:] = BASIC
        for j in range(self.n):
            cj = self.cost[j]
            lo_ok = math.isfinite(self.lo[j])
            up_ok = math.isfinite(self.up[j])
            if cj > DUAL_TOL:
                status[j] = AT_LB if lo_ok else (AT_UB if up_ok else AT_FREE)
            elif cj < -DUAL_TOL:
                status[j] = AT_UB if up_ok else (AT_LB if lo_ok else AT_FREE)
            elif lo_ok:
                status[j] = AT_LB
            elif up_ok:
                status[j] = AT_UB
            else:
                status[j] = AT_FREE
        basic = self.n + np.arange(self.m, dtype=int)
        return Basis(basic, status)


def extend_basis(basis: Basis, sf: StandardFormLP, added: int) -> Basis:
    """Extend an optimal basis of the pre-append form after ``append_ub_rows``.

    The ``added`` new slack columns become basic in their own rows.  The
    extended basis matrix is block triangular (old basis, identity block),
    so it is nonsingular, and with zero-cost slacks the old reduced costs
    are unchanged — the start stays *dual* feasible and a short dual-simplex
    repair drives the violated cut rows back into their boxes.
    """
    new_rows = sf.m - added + np.arange(added, dtype=int)
    basic = np.concatenate([basis.basic, sf.n + new_rows])
    status = np.concatenate(
        [basis.status, np.full(added, BASIC, dtype=basis.status.dtype)]
    )
    return Basis(basic, status)


def _pick_factor(sf: StandardFormLP):
    """Kernel selection: dense inverse for small bases, sparse LU above."""
    if HAVE_SPARSE and sf.m > DENSE_KERNEL_MAX:
        return _SparseLUFactor(sf)
    return _DenseFactor(sf)


def _row_times_matrix(y: np.ndarray, a: np.ndarray) -> np.ndarray:
    """``y @ a`` exploiting a sparse ``y``: sum only its nonzero rows.

    BTRANs of unit vectors are frequently hypersparse; when fewer than a
    quarter of the entries are nonzero, restricting the product to those
    rows beats the full dense GEMV.
    """
    nz = np.flatnonzero(y)
    if nz.size * 4 <= y.shape[0]:
        return y[nz] @ a[nz]
    return y @ a


class _DenseFactor:
    """Explicit-inverse basis kernel for small bases (and SciPy-less runs).

    Keeps ``B^{-1}`` as a dense matrix and applies the classic
    product-form update after each pivot.  Below roughly a hundred rows
    this both refactorizes and solves faster than the sparse LU — and a
    BTRAN of a unit vector is a plain row read of the inverse, which the
    dual loop and the cut separator lean on heavily.
    """

    def __init__(self, sf: StandardFormLP) -> None:
        self.sf = sf
        self.b_inv: Optional[np.ndarray] = None
        self.updates = 0

    def refactor(self, basic: np.ndarray) -> bool:
        """Rebuild the inverse from scratch; ``False`` if singular."""
        self.updates = 0
        try:
            self.b_inv = np.linalg.inv(self.sf.a[:, basic])
        except np.linalg.LinAlgError:
            return False
        return bool(np.all(np.isfinite(self.b_inv)))

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B x = rhs``."""
        return self.b_inv @ rhs

    def ftran_column(self, j: int) -> np.ndarray:
        """Solve ``B x = A[:, j]`` (the entering-column FTRAN)."""
        return self.b_inv @ self.sf.a[:, j]

    def btran(self, u: np.ndarray) -> np.ndarray:
        """Solve ``y B = u`` (equivalently ``B^T y^T = u^T``)."""
        return u @ self.b_inv

    def btran_unit(self, i: int) -> np.ndarray:
        """Solve ``y B = e_i`` — row ``i`` of the explicit inverse."""
        return self.b_inv[i]

    def update(self, row: int, w: np.ndarray) -> None:
        """Product-form update after ``w = ftran(entering column)`` pivots
        into ``row``."""
        pivot = w[row]
        self.b_inv[row] /= pivot
        others = w.copy()
        others[row] = 0.0
        self.b_inv -= np.outer(others, self.b_inv[row])
        self.updates += 1

    def should_refactor(self) -> bool:
        """Fixed cadence: rank-one updates accumulate error linearly."""
        return self.updates >= REFACTOR_EVERY


class _SparseLUFactor:
    """Sparse-LU basis kernel: ``splu`` of the CSC basis plus an eta file.

    A refactorization slices the basic columns out of the form's cached
    CSC matrix and LU-factorizes them.  Each pivot appends one eta vector
    stored on its nonzero support — ``(row, support, values, w[row])``
    with ``w = ftran(entering column)`` captured *before* the update — so
    applying an eta touches only the rows the pivot actually changed.
    FTRAN applies the etas oldest-first after the LU solve, BTRAN
    newest-first before the transposed solve.  :meth:`should_refactor`
    bounds the eta file by accumulated fill rather than a fixed count:
    hypersparse pivots let the file grow long, dense ones force an early
    rebuild.
    """

    def __init__(self, sf: StandardFormLP) -> None:
        self.sf = sf
        self.lu = None
        self.etas: List[Tuple[int, np.ndarray, np.ndarray, float]] = []
        self.fill = 0
        self._rhs_scratch = np.zeros(sf.m)

    def refactor(self, basic: np.ndarray) -> bool:
        """Factorize the basis from scratch; ``False`` means singular."""
        self.etas.clear()
        self.fill = 0
        try:
            self.lu = _splu(self.sf.a_csc()[:, basic].tocsc())
        except RuntimeError:  # "Factor is exactly singular"
            return False
        probe = self.lu.solve(np.ones(self.sf.m))
        return bool(np.all(np.isfinite(probe)))

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B x = rhs`` through the LU factors, then the eta file."""
        x = self.lu.solve(np.asarray(rhs, dtype=float))
        for row, support, values, w_row in self.etas:
            pivot = x[row] / w_row
            if pivot != 0.0:
                x[support] -= values * pivot
                x[row] = pivot
        return x

    def ftran_column(self, j: int) -> np.ndarray:
        """Solve ``B x = A[:, j]`` from the CSC column, allocation-light.

        The unit-ish RHS is scattered into a preallocated scratch vector
        (zeroed on its previous support), so fetching a column never
        materializes a dense slice of ``A``.
        """
        csc = self.sf.a_csc()
        start, stop = csc.indptr[j], csc.indptr[j + 1]
        rows = csc.indices[start:stop]
        scratch = self._rhs_scratch
        scratch[rows] = csc.data[start:stop]
        x = self.lu.solve(scratch)
        scratch[rows] = 0.0
        for row, support, values, w_row in self.etas:
            pivot = x[row] / w_row
            if pivot != 0.0:
                x[support] -= values * pivot
                x[row] = pivot
        return x

    def btran(self, u: np.ndarray) -> np.ndarray:
        """Solve ``y B = u``: eta file newest-first, then ``L U`` transposed."""
        u = np.array(u, dtype=float)
        for row, support, values, w_row in reversed(self.etas):
            u[row] += (u[row] - u[support] @ values) / w_row
        return self.lu.solve(u, trans="T")

    def btran_unit(self, i: int) -> np.ndarray:
        """Solve ``y B = e_i`` through a scattered unit scratch vector."""
        scratch = self._rhs_scratch
        scratch[i] = 1.0
        u = scratch.copy()
        scratch[i] = 0.0
        for row, support, values, w_row in reversed(self.etas):
            u[row] += (u[row] - u[support] @ values) / w_row
        return self.lu.solve(u, trans="T")

    def update(self, row: int, w: np.ndarray) -> None:
        """Append one eta vector (on its nonzero support) for the pivot of
        ``w`` into ``row``."""
        support = np.flatnonzero(w)
        self.etas.append((row, support, w[support].copy(), float(w[row])))
        self.fill += support.size

    def should_refactor(self) -> bool:
        """Fill-driven policy: rebuild when applying the eta file rivals
        the cost of a fresh factorization."""
        return (
            len(self.etas) >= ETA_MAX_UPDATES
            or self.fill >= ETA_FILL_FACTOR * self.sf.m
        )


class TableauAccess:
    """Read rows of the simplex tableau ``B^{-1} A`` at a given basis.

    The Gomory separator needs the tableau row of each fractional basic
    variable.  This refactorizes the basis once (reusing the engine's
    dense/sparse kernels) and answers each row with one unit-vector BTRAN
    plus a sparsity-aware pricing product — no simplex state is touched,
    and every row in a cut round rides the same factorization.
    """

    def __init__(self, sf: StandardFormLP, basis: Basis) -> None:
        self.sf = sf
        self.basis = basis
        self.factor = _pick_factor(sf)
        self.ok = self.factor.refactor(basis.basic)

    def row(self, i: int) -> np.ndarray:
        """Tableau row ``i`` over all columns: ``(B^{-1} A)[i, :]``."""
        return _row_times_matrix(self.factor.btran_unit(i), self.sf.a)

    def basic_values(self) -> np.ndarray:
        """``x_B = B^{-1}(b - N x_N)`` under the basis's nonbasic statuses."""
        sf = self.sf
        x = np.where(self.basis.status == AT_UB, sf.up, sf.lo)
        x[self.basis.status == AT_FREE] = 0.0
        x[self.basis.status == BASIC] = 0.0
        return self.factor.ftran(sf.b - sf.a @ x)


def _micro_lists(sf: StandardFormLP):
    """Row- and column-major Python lists of ``A``, cached on the form.

    The cache key is the column count: :meth:`StandardFormLP.append_ub_rows`
    is the only way the matrix changes and it always grows ``ncols``, so a
    stale cache can never be returned.  Bounds and objective mutate freely
    without touching the matrix, which is why they are *not* cached here.
    """
    cached = getattr(sf, "_micro_cache", None)
    if cached is not None and cached[0] == sf.ncols:
        return cached[1], cached[2]
    rows = sf.a.tolist()
    cols = sf.a.T.tolist()
    sf._micro_cache = (sf.ncols, rows, cols)
    return rows, cols


def _solve_micro(
    sf: StandardFormLP, basis: Basis, max_iterations: int
) -> Optional[RevisedResult]:
    """Scalar warm repair for tiny bases; ``None`` means take the general path.

    A warm branch-and-bound re-solve on a basis of a few rows spends an
    order of magnitude more time in numpy call dispatch than in arithmetic,
    so this kernel runs the same bounded-variable dual simplex — worst
    bound violation out, bound-flipping ratio test, product-form inverse
    update — on plain Python floats.  It is deliberately narrow: it only
    accepts a dual-feasible start with no free columns, and anything it
    cannot certify (budget exhausted, tiny pivot, residual or optimality
    check failure at the end) returns ``None`` so the vector engine redoes
    the solve from the same input basis.  The input ``sf``/``basis`` are
    never mutated.
    """
    m, n, ncols = sf.m, sf.n, sf.ncols
    status = basis.status.tolist()
    if AT_FREE in status:
        return None
    basic = basis.basic.tolist()
    lo = sf.lo.tolist()
    up = sf.up.tolist()
    cost = sf.cost.tolist()
    rows_l, cols = _micro_lists(sf)
    try:
        binv = np.linalg.inv(sf.a[:, basis.basic]).tolist()
    except np.linalg.LinAlgError:
        return None
    refactors = 1

    # x_B = B^{-1} (b - N x_N) with every nonbasic at its status bound.
    r = sf.b.tolist()
    for j in range(ncols):
        s = status[j]
        if s == BASIC:
            continue
        v = up[j] if s == AT_UB else lo[j]
        if v != 0.0:
            cj = cols[j]
            for i in range(m):
                r[i] -= v * cj[i]
    xb = [0.0] * m
    for i in range(m):
        bi = binv[i]
        acc = 0.0
        for k in range(m):
            acc += bi[k] * r[k]
        xb[i] = acc

    # Reduced costs d = c - (c_B B^{-1}) A, plus the dual-feasibility gate:
    # a start the dual simplex cannot repair goes to the general engine.
    y = [0.0] * m
    for i in range(m):
        cb = cost[basic[i]]
        if cb != 0.0:
            bi = binv[i]
            for k in range(m):
                y[k] += cb * bi[k]
    d = [0.0] * ncols
    for j in range(ncols):
        cj = cols[j]
        acc = 0.0
        for k in range(m):
            acc += y[k] * cj[k]
        dj = cost[j] - acc
        d[j] = dj
        s = status[j]
        if s == BASIC or up[j] - lo[j] <= FEAS_TOL:
            continue
        if s == AT_LB:
            if dj < -DUAL_TOL:
                return None
        elif dj > DUAL_TOL:
            return None

    iters = 0
    flips_total = 0
    ftran_sparse = 0
    budget = min(max_iterations, MICRO_BUDGET)
    while True:
        # Leaving row: worst absolute bound violation (first max wins).
        row = -1
        worst = FEAS_TOL
        row_below = False
        for i in range(m):
            xi = xb[i]
            bj = basic[i]
            v = lo[bj] - xi
            if v > worst:
                worst = v
                row = i
                row_below = True
            v = xi - up[bj]
            if v > worst:
                worst = v
                row = i
                row_below = False
        if row < 0:
            break  # primal feasible — certify optimality below
        if iters >= budget:
            return None  # crawling: the general engine takes over

        # Tableau row alpha = (row of B^{-1}) A over the movable nonbasics;
        # eligible candidates keep d sign-feasible after the pivot.
        yr = binv[row]
        alphas: List[Tuple[int, float]] = []
        cand: List[Tuple[float, int, float]] = []
        for j in range(ncols):
            s = status[j]
            if s == BASIC or up[j] - lo[j] <= FEAS_TOL:
                continue
            cj = cols[j]
            aj = 0.0
            for k in range(m):
                aj += yr[k] * cj[k]
            alphas.append((j, aj))
            dirj = -aj if row_below else aj
            if s == AT_LB:
                if dirj > PIVOT_TOL:
                    cand.append((abs(d[j]) / dirj, j, dirj))
            elif dirj < -PIVOT_TOL:
                cand.append((abs(d[j]) / -dirj, j, dirj))
        if not cand:
            return RevisedResult(
                RevisedStatus.INFEASIBLE, None, math.nan, iters, None,
                counters=PivotCounters(
                    dual_pivots=iters, refactorizations=refactors,
                    bound_flips=flips_total, ftran_sparsity=ftran_sparse,
                ),
            )
        cand.sort(key=lambda t: t[0])

        # Bound-flipping ratio test: flip boxed candidates while the dual
        # slope stays positive; the first blocker enters.
        slope = worst
        flips: List[int] = []
        entering = -1
        for ratio, j, dirj in cand:
            gain = dirj if dirj > 0.0 else -dirj
            gain *= up[j] - lo[j]
            if math.isfinite(gain) and slope - gain > FEAS_TOL:
                flips.append(j)
                slope -= gain
            else:
                entering = j
                break
        if entering == -1:
            return RevisedResult(
                RevisedStatus.INFEASIBLE, None, math.nan, iters, None,
                counters=PivotCounters(
                    dual_pivots=iters, refactorizations=refactors,
                    bound_flips=flips_total, ftran_sparsity=ftran_sparse,
                ),
            )

        # Entering column w = B^{-1} A_q and the pivot element.
        ce = cols[entering]
        w = [0.0] * m
        nnz = 0
        for i in range(m):
            bi = binv[i]
            acc = 0.0
            for k in range(m):
                acc += bi[k] * ce[k]
            w[i] = acc
            if acc != 0.0:
                nnz += 1
        if 2 * nnz <= m:
            ftran_sparse += 1
        wr = w[row]
        if -PIVOT_TOL < wr < PIVOT_TOL:
            return None  # tiny pivot: let the vector engine sort it out

        if flips:
            # Status swaps plus the rhs shift of each flipped column.
            for j in flips:
                span = up[j] - lo[j]
                if status[j] == AT_LB:
                    status[j] = AT_UB
                    delta = span
                else:
                    status[j] = AT_LB
                    delta = -span
                cj = cols[j]
                for i in range(m):
                    bi = binv[i]
                    acc = 0.0
                    for k in range(m):
                        acc += bi[k] * cj[k]
                    xb[i] -= delta * acc
            flips_total += len(flips)

        leaving = basic[row]
        # Dual step: d stays current through one scalar AXPY over the
        # movable nonbasics; the leaving column lands on -theta exactly.
        theta = d[entering] / wr
        if theta != 0.0:
            for j, aj in alphas:
                if aj != 0.0:
                    d[j] -= theta * aj
        d[entering] = 0.0
        d[leaving] = -theta

        # Primal step: leaving travels to its violated bound.
        target = lo[leaving] if row_below else up[leaving]
        v_ent = up[entering] if status[entering] == AT_UB else lo[entering]
        t_primal = (xb[row] - target) / wr
        if t_primal != 0.0:
            for i in range(m):
                xb[i] -= w[i] * t_primal
        xb[row] = v_ent + t_primal

        status[entering] = BASIC
        status[leaving] = AT_LB if row_below else AT_UB
        basic[row] = entering

        # Product-form inverse update.
        brow = binv[row]
        for k in range(m):
            brow[k] /= wr
        for i in range(m):
            if i == row:
                continue
            wi = w[i]
            if wi != 0.0:
                bi = binv[i]
                for k in range(m):
                    bi[k] -= wi * brow[k]
        iters += 1
        if iters % REFACTOR_EVERY == 0:
            # Same safeguard cadence as the dense kernel; at this size a
            # fresh inverse costs a few microseconds.
            try:
                binv = np.linalg.inv(sf.a[:, basic]).tolist()
            except np.linalg.LinAlgError:
                return None
            refactors += 1

    # Certify: recompute reduced costs from scratch and require dual
    # feasibility (any improving column means primal work remains — the
    # general engine finishes it), then verify the assembled point.
    y = [0.0] * m
    for i in range(m):
        cb = cost[basic[i]]
        if cb != 0.0:
            bi = binv[i]
            for k in range(m):
                y[k] += cb * bi[k]
    for j in range(ncols):
        s = status[j]
        if s == BASIC or up[j] - lo[j] <= FEAS_TOL:
            continue
        cj = cols[j]
        acc = 0.0
        for k in range(m):
            acc += y[k] * cj[k]
        dj = cost[j] - acc
        if s == AT_LB:
            if dj < -DUAL_TOL:
                return None
        elif dj > DUAL_TOL:
            return None

    xs = [0.0] * ncols
    for j in range(ncols):
        xs[j] = up[j] if status[j] == AT_UB else lo[j]
    for i in range(m):
        xs[basic[i]] = xb[i]
    scale = 1.0
    for v in sf.b.tolist():
        av = -v if v < 0.0 else v
        if av + 1.0 > scale:
            scale = av + 1.0
    tol = 1e-6 * scale
    bl = sf.b.tolist()
    for i in range(m):
        ar = rows_l[i]
        acc = 0.0
        for j in range(ncols):
            xj = xs[j]
            if xj != 0.0:
                acc += ar[j] * xj
        if not (-tol <= acc - bl[i] <= tol):
            return None
    for j in range(ncols):
        xj = xs[j]
        if xj < lo[j] - 1e-6 or xj > up[j] + 1e-6:
            return None

    objective = sf.c0
    for j in range(n):
        cj = cost[j]
        if cj != 0.0:
            objective += cj * xs[j]
    return RevisedResult(
        RevisedStatus.OPTIMAL,
        np.array(xs[:n]),
        float(objective),
        iters,
        Basis(
            np.array(basic, dtype=basis.basic.dtype),
            np.array(status, dtype=basis.status.dtype),
        ),
        counters=PivotCounters(
            dual_pivots=iters, refactorizations=refactors,
            bound_flips=flips_total, ftran_sparsity=ftran_sparse,
        ),
    )


def solve_revised(
    sf: StandardFormLP,
    basis: Optional[Basis] = None,
    max_iterations: int = 20_000,
    pricing_block_size: int = 0,
    want_reduced_costs: bool = False,
    pricing: str = "devex",
) -> RevisedResult:
    """Solve ``sf``, optionally warm-starting from a previous basis.

    Args:
        sf: The standard form (possibly mutated since the basis was made).
        basis: Final basis of a previous solve of the *same* form; the
            input is copied, never mutated.  ``None`` means cold start
            from the all-logical basis.
        max_iterations: Pivot budget; exceeding it yields NEEDS_FALLBACK.
        pricing_block_size: Partial-pricing block width in dantzig mode;
            ``0`` picks automatically (single block at or below
            :data:`PRICING_SINGLE_BLOCK` columns, :data:`PRICING_BLOCK`
            above).
        want_reduced_costs: Capture structural reduced costs on the
            optimal result (costs one extra BTRAN + pricing product).
        pricing: ``"devex"`` (default) for reference-framework pricing or
            ``"dantzig"`` for the legacy partial-Dantzig blocks.

    Returns:
        A :class:`RevisedResult`; on OPTIMAL its ``basis`` warm-starts the
        next solve after further mutations.
    """
    if np.any(sf.lo > sf.up + FEAS_TOL):
        return RevisedResult(RevisedStatus.INFEASIBLE, None, math.nan, 0, None)
    if sf.m == 0:
        return RevisedResult(RevisedStatus.NEEDS_FALLBACK, None, math.nan, 0, None)
    warm = basis is not None
    if warm and not want_reduced_costs and sf.m <= MICRO_KERNEL_MAX:
        micro = _solve_micro(sf, basis, max_iterations)
        if micro is not None:
            return micro
    if basis is None:
        basis = sf.logical_basis()
    engine = _Engine(
        sf, basis.copy(), max_iterations, warm=warm,
        pricing_block_size=pricing_block_size,
        want_reduced_costs=want_reduced_costs,
        pricing=pricing,
    )
    return engine.run()


def solve_with_fallback(
    sf: StandardFormLP,
    basis: Optional[Basis] = None,
    max_iterations: int = 20_000,
    pricing_block_size: int = 0,
    want_reduced_costs: bool = False,
    pricing: str = "devex",
) -> Tuple[LPResult, Optional[Basis], bool]:
    """Solve via the revised path, falling back to the dense tableau.

    This is the policy branch and bound uses per node: try the
    incremental engine (warm when ``basis`` is given); if it signals
    NEEDS_FALLBACK, re-solve cold with :func:`repro.solvers.simplex.solve_lp`,
    which is slower but oracle-grade.

    Returns:
        ``(result, final_basis, fell_back)`` — ``final_basis`` is ``None``
        whenever the dense path produced the result (it has no basis to
        hand to children), and ``fell_back`` says which path answered.
        ``result.reduced_costs`` is populated only when requested *and*
        the revised path answered (the dense oracle does not expose
        duals) — reduced-cost fixing degrades gracefully to off.
    """
    revised = solve_revised(
        sf, basis, max_iterations=max_iterations,
        pricing_block_size=pricing_block_size,
        want_reduced_costs=want_reduced_costs,
        pricing=pricing,
    )
    if revised.status is not RevisedStatus.NEEDS_FALLBACK:
        status = {
            RevisedStatus.OPTIMAL: LPStatus.OPTIMAL,
            RevisedStatus.INFEASIBLE: LPStatus.INFEASIBLE,
            RevisedStatus.UNBOUNDED: LPStatus.UNBOUNDED,
        }[revised.status]
        return (
            LPResult(
                status, revised.x, revised.objective, revised.iterations,
                counters=revised.counters,
                reduced_costs=revised.reduced_costs,
            ),
            revised.basis,
            False,
        )
    n = sf.n
    # Select rows by their logical column's box, not by position: appended
    # cut rows put ``<=`` rows after the equality block, so the row order
    # is no longer [ub..., eq...].
    ub_rows = np.isinf(sf.up[n:])
    dense = solve_lp(
        sf.cost[:n],
        sf.a[ub_rows, :n], sf.b[ub_rows],
        sf.a[~ub_rows, :n], sf.b[~ub_rows],
        sf.lo[:n], sf.up[:n], c0=sf.c0,
    )
    return dense, None, True


class _Engine:
    """One revised-simplex solve: state, pivots, and the pivot rules."""

    def __init__(
        self,
        sf: StandardFormLP,
        basis: Basis,
        max_iterations: int,
        warm: bool = False,
        pricing_block_size: int = 0,
        want_reduced_costs: bool = False,
        pricing: str = "devex",
    ) -> None:
        self.sf = sf
        self.basic = basis.basic
        self.status = basis.status
        self.max_iterations = max_iterations
        self.warm = warm
        self.want_reduced_costs = want_reduced_costs
        self.iterations = 0
        self.counters = PivotCounters()
        self.factor = _pick_factor(sf)
        self.devex = pricing != "dantzig"
        # Dual devex row weights engage only on bases large enough for the
        # reference framework to mature: weights reset at every dual loop,
        # so on the few-pivot warm repairs of small bases they never move
        # far from 1 and only add noise to the (otherwise max-violation)
        # row choice.  The primal loop keeps devex at every size — cold
        # starts run long enough for the framework to pay off.
        self.devex_rows = self.devex and sf.m > DENSE_KERNEL_MAX
        self.x_basic: Optional[np.ndarray] = None
        # Columns that can never move: fixed boxes (includes eq artificials).
        self.fixed = np.isfinite(sf.lo) & np.isfinite(sf.up) & (sf.up - sf.lo <= FEAS_TOL)
        if pricing_block_size > 0:
            width = pricing_block_size
        elif sf.ncols <= PRICING_SINGLE_BLOCK:
            width = sf.ncols
        else:
            width = PRICING_BLOCK
        self._blocks = [
            (start, min(start + width, sf.ncols))
            for start in range(0, sf.ncols, width)
        ]
        self._pblock = 0  # rotating pointer: block where pricing starts
        # Preallocated scratch: the per-pivot ratio test and devex weights
        # reuse these for the life of the solve.
        self._steps = np.empty(sf.m)
        self._row_weights = np.ones(sf.m)
        self._col_weights = np.ones(sf.ncols)

    # -- linear algebra -----------------------------------------------------
    def refactor(self) -> bool:
        """Refactorize the basis from scratch; False if singular."""
        self.counters.refactorizations += 1
        return self.factor.refactor(self.basic)

    def nonbasic_point(self) -> np.ndarray:
        """Full-length x with every nonbasic column at its status value."""
        sf = self.sf
        x = np.where(self.status == AT_UB, sf.up, sf.lo)
        x[self.status == AT_FREE] = 0.0
        x[self.status == BASIC] = 0.0
        return x

    def recompute_basics(self) -> None:
        """x_B = B^{-1} (b - N x_N) from the current statuses."""
        x = self.nonbasic_point()
        rhs = self.sf.b - self.sf.a @ x
        self.x_basic = self.factor.ftran(rhs)

    def reduced_costs(self) -> np.ndarray:
        """d = c - c_B B^{-1} A over all columns."""
        y = self.factor.btran(self.sf.cost[self.basic])
        return self.sf.cost - _row_times_matrix(y, self.sf.a)

    def entering_column(self, j: int) -> np.ndarray:
        """FTRAN of column ``j``, tracking the hypersparsity counter."""
        w = self.factor.ftran_column(j)
        if 2 * np.count_nonzero(w) <= self.sf.m:
            self.counters.ftran_sparsity += 1
        return w

    # -- pricing ------------------------------------------------------------
    def _price(
        self, y: np.ndarray, phase1: bool, use_bland: bool
    ) -> Optional[Tuple[int, float]]:
        """Deterministic partial pricing (dantzig mode): entering column.

        Scans the fixed, index-ordered column blocks and returns
        ``(entering, d_entering)`` from the first block holding an
        improving column, or ``None`` at (phase-specific) optimality.
        Dantzig mode starts at the rotating pointer ``_pblock`` (left on
        the last productive block) and takes the in-block argmax of
        ``|d|`` — ``np.argmax`` resolves ties to the lowest index; Bland
        mode always scans from block 0 and takes the globally lowest
        improving index, preserving the anti-cycling guarantee.  With a
        single block both modes reduce to their classic full-pricing
        forms.
        """
        sf = self.sf
        nblocks = len(self._blocks)
        if use_bland or nblocks == 1:
            order = range(nblocks)
        else:
            order = [(self._pblock + i) % nblocks for i in range(nblocks)]
        for bi in order:
            start, stop = self._blocks[bi]
            if phase1:
                d = -(y @ sf.a[:, start:stop])
            else:
                d = sf.cost[start:stop] - y @ sf.a[:, start:stop]
            stat = self.status[start:stop]
            movable = ~self.fixed[start:stop] & (stat != BASIC)
            improving = movable & (
                ((stat == AT_LB) & (d < -DUAL_TOL))
                | ((stat == AT_UB) & (d > DUAL_TOL))
                | ((stat == AT_FREE) & (np.abs(d) > DUAL_TOL))
            )
            indices = np.nonzero(improving)[0]
            if indices.size == 0:
                continue
            if use_bland:
                local = int(indices[0])
            else:
                local = int(indices[np.argmax(np.abs(d[indices]))])
                self._pblock = bi
            return start + local, float(d[local])
        return None

    def _improving_mask(self, d: np.ndarray) -> np.ndarray:
        """Columns whose reduced cost improves the objective (full scan)."""
        stat = self.status
        return ~self.fixed & (
            ((stat == AT_LB) & (d < -DUAL_TOL))
            | ((stat == AT_UB) & (d > DUAL_TOL))
            | ((stat == AT_FREE) & (np.abs(d) > DUAL_TOL))
        )

    def reset_col_weights(self) -> None:
        """Start a fresh devex reference framework over the columns."""
        self._col_weights.fill(1.0)
        self.counters.devex_resets += 1

    # -- feasibility checks -------------------------------------------------
    def primal_violations(self) -> np.ndarray:
        """Signed bound violation of each basic variable (0 when feasible)."""
        lo_b = self.sf.lo[self.basic]
        up_b = self.sf.up[self.basic]
        below = np.minimum(self.x_basic - lo_b, 0.0)
        above = np.maximum(self.x_basic - up_b, 0.0)
        return below + above

    def dual_feasible(self, d: np.ndarray) -> bool:
        """Check sign conditions of reduced costs against statuses."""
        movable = ~self.fixed
        at_lb = (self.status == AT_LB) & movable
        at_ub = (self.status == AT_UB) & movable
        at_free = self.status == AT_FREE
        if np.any(d[at_lb] < -DUAL_TOL):
            return False
        if np.any(d[at_ub] > DUAL_TOL):
            return False
        if np.any(np.abs(d[at_free]) > DUAL_TOL):
            return False
        return True

    # -- driver -------------------------------------------------------------
    def run(self) -> RevisedResult:
        """Restore primal feasibility, then primal simplex to optimality.

        A warm start whose reduced costs are still sign-feasible (the
        regime after a branch-and-bound bound change) is repaired by the
        dual simplex — the violations are few and shallow, exactly where
        dual pivoting shines.  Everything else — a cold start, or a basis
        invalidated by an objective change — goes through primal phase 1,
        which reaches feasibility in few pivots on the deeply infeasible
        starts that make dual pivoting crawl.
        """
        if not self.refactor():
            return self._bail()
        self.recompute_basics()
        violations = self.primal_violations()
        counters = self.counters
        if np.any(np.abs(violations) > FEAS_TOL):
            if self.warm:
                d = self.reduced_costs()
                if self.dual_feasible(d):
                    before = self.iterations
                    status = self.dual_loop(d)
                    counters.dual_pivots += self.iterations - before
                    if status is not None:
                        return status
            # Phase 1 is a no-op when the dual loop already restored
            # feasibility; it takes over when the start was not dual
            # feasible or the dual loop gave up its budget mid-repair.
            before = self.iterations
            status = self.phase1_loop()
            counters.phase1_pivots += self.iterations - before
            if status is not None:
                return status
        before = self.iterations
        status = self.primal_loop()
        counters.primal_pivots += self.iterations - before
        if status is not None:
            return status
        return self.finish()

    def _bail(self) -> RevisedResult:
        return RevisedResult(
            RevisedStatus.NEEDS_FALLBACK, None, math.nan, self.iterations, None,
            counters=self.counters,
        )

    def finish(self) -> RevisedResult:
        """Assemble and verify the optimal point; drift means fallback."""
        sf = self.sf
        x = self.nonbasic_point()
        x[self.basic] = self.x_basic
        scale = 1.0 + float(np.max(np.abs(sf.b))) if sf.b.size else 1.0
        residual = float(np.max(np.abs(sf.a @ x - sf.b))) if sf.m else 0.0
        if residual > 1e-6 * scale:
            return self._bail()
        if np.any(x < sf.lo - 1e-6) or np.any(x > sf.up + 1e-6):
            return self._bail()
        structural = x[: sf.n].copy()
        objective = float(sf.cost[: sf.n] @ structural) + sf.c0
        reduced = None
        if self.want_reduced_costs:
            reduced = self.reduced_costs()[: sf.n].copy()
        return RevisedResult(
            RevisedStatus.OPTIMAL, structural, objective, self.iterations,
            Basis(self.basic.copy(), self.status.copy()),
            counters=self.counters,
            reduced_costs=reduced,
        )

    # -- dual simplex -------------------------------------------------------
    def dual_loop(self, d: np.ndarray) -> Optional[RevisedResult]:
        """Pivot until every basic variable is inside its box.

        Requires a dual-feasible start (reduced costs ``d`` at entry);
        preserves dual feasibility, so on exit (primal feasible too) the
        basis is optimal.  The reduced-cost vector and the basic values
        are maintained *incrementally* — one AXPY each per pivot against
        the tableau row/column the ratio test already computed — instead
        of being recomputed from scratch every iteration, and both are
        refreshed whenever the factorization is rebuilt.

        The ratio test is the bound-flipping (long-step) variant: sorted
        by ratio, every boxed candidate whose flip keeps the dual slope
        positive is flipped in place (status swap, one aggregated FTRAN
        for the right-hand-side shift) and the entering column is the
        first blocking breakpoint.  Leaving-row choice is devex-weighted
        violation on bases past the dense-kernel threshold, worst
        absolute violation on small bases and in dantzig mode.

        A warm repair normally takes a handful of pivots, so the loop
        runs on a short budget: exhausting it means the start was
        degenerate enough to crawl, and the engine abandons the dual
        route mid-repair (the basis stays valid) and lets primal phase 1
        finish the job.  Returns a final result only on infeasibility or
        trouble; ``None`` means "continue with the primal machinery".
        """
        sf = self.sf
        counters = self.counters
        weights = self._row_weights
        if self.devex_rows:
            weights.fill(1.0)
            counters.devex_resets += 1
        budget = self.iterations + min(self.max_iterations, max(sf.m // 2, 100))
        while True:
            lo_b = sf.lo[self.basic]
            up_b = sf.up[self.basic]
            violations = (
                np.minimum(self.x_basic - lo_b, 0.0)
                + np.maximum(self.x_basic - up_b, 0.0)
            )
            absviol = np.abs(violations)
            if self.devex_rows:
                score = np.where(absviol > FEAS_TOL, absviol * absviol / weights, -1.0)
                row = int(np.argmax(score))
            else:
                row = int(np.argmax(absviol))
            if absviol[row] <= FEAS_TOL:
                return None
            if self.iterations >= self.max_iterations:
                return self._bail()
            if self.iterations >= budget:
                return None  # crawling — hand the basis to phase 1

            leaving = self.basic[row]
            below = violations[row] < 0  # leaving variable returns to its lb
            alpha = _row_times_matrix(self.factor.btran_unit(row), sf.a)
            # Entering candidates must keep d sign-feasible after the pivot.
            direction = -alpha if below else alpha
            eligible = ~self.fixed & (self.status != BASIC) & (
                ((self.status == AT_LB) & (direction > PIVOT_TOL))
                | ((self.status == AT_UB) & (direction < -PIVOT_TOL))
                | ((self.status == AT_FREE) & (np.abs(direction) > PIVOT_TOL))
            )
            idx = np.nonzero(eligible)[0]
            if idx.size == 0:
                return RevisedResult(
                    RevisedStatus.INFEASIBLE, None, math.nan, self.iterations, None
                )
            dir_idx = direction[idx]
            ratios = np.abs(d[idx]) / np.abs(dir_idx)

            # Bound-flipping ratio test: walk breakpoints in ratio order,
            # flipping boxed candidates while the dual slope stays
            # positive; the first blocking candidate enters.
            order = np.argsort(ratios, kind="stable")
            slope = float(absviol[row])
            flips: List[int] = []
            entering = -1
            for k in order:
                j = int(idx[k])
                span = sf.up[j] - sf.lo[j]
                gain = abs(float(dir_idx[k])) * span
                if math.isfinite(gain) and slope - gain > FEAS_TOL:
                    flips.append(j)
                    slope -= gain
                else:
                    entering = j
                    break
            if entering == -1:
                # Every breakpoint flipped and the slope never hit zero:
                # the dual is unbounded, so the primal is infeasible.
                return RevisedResult(
                    RevisedStatus.INFEASIBLE, None, math.nan, self.iterations, None
                )

            w = self.entering_column(entering)
            alpha_q = float(alpha[entering])
            if abs(w[row]) < PIVOT_TOL or abs(w[row] - alpha_q) > DRIFT_TOL * (
                1.0 + abs(alpha_q)
            ):
                # Tiny or drifting pivot: rebuild and retry the iteration
                # from refreshed state.
                if not self.refactor():
                    return self._bail()
                self.recompute_basics()
                d = self.reduced_costs()
                w = self.entering_column(entering)
                if abs(w[row]) < PIVOT_TOL:
                    return self._bail()

            # Apply the accumulated bound flips: statuses swap and the
            # basic values absorb one aggregated FTRAN of the shifted
            # right-hand side.
            if flips:
                shift = np.empty(len(flips))
                for t, j in enumerate(flips):
                    span_j = sf.up[j] - sf.lo[j]
                    if self.status[j] == AT_LB:
                        self.status[j] = AT_UB
                        shift[t] = span_j
                    else:
                        self.status[j] = AT_LB
                        shift[t] = -span_j
                self.x_basic -= self.factor.ftran(sf.a[:, flips] @ shift)
                counters.bound_flips += len(flips)

            # Dual step: one AXPY keeps d current (d[leaving] lands on
            # -theta automatically since the leaving column's tableau row
            # entry is 1).
            theta = float(d[entering]) / w[row]
            if theta != 0.0:
                d -= theta * alpha
            d[entering] = 0.0

            # Primal step: the leaving variable travels to its violated
            # bound; every other basic moves along the entering column.
            target = lo_b[row] if below else up_b[row]
            v_entering = (
                sf.up[entering] if self.status[entering] == AT_UB else
                0.0 if self.status[entering] == AT_FREE else sf.lo[entering]
            )
            t_primal = (float(self.x_basic[row]) - target) / w[row]
            if t_primal != 0.0:
                self.x_basic -= w * t_primal
            self.x_basic[row] = v_entering + t_primal

            if self.devex_rows:
                # Reference-framework update from the entering column the
                # pivot already computed: w_i/w_r is the tableau ratio.
                gamma_r = float(weights[row])
                ratio2 = (w / w[row]) ** 2
                np.maximum(weights, ratio2 * gamma_r, out=weights)
                weights[row] = max(gamma_r / (w[row] * w[row]), 1.0)
                if float(weights.max()) > DEVEX_RESET_LIMIT:
                    weights.fill(1.0)
                    counters.devex_resets += 1

            self.status[entering] = BASIC
            self.status[leaving] = AT_LB if below else AT_UB
            self.basic[row] = entering
            self.factor.update(row, w)
            self.iterations += 1
            if self.factor.should_refactor():
                if not self.refactor():
                    return self._bail()
                self.recompute_basics()
                d = self.reduced_costs()

    # -- primal phase 1 -----------------------------------------------------
    def phase1_loop(self) -> Optional[RevisedResult]:
        """Drive total bound infeasibility of the basics to zero.

        Bounded-variable composite phase 1: minimize the sum of bound
        violations of the basic variables, whose gradient is ``-1`` for a
        basic below its lower bound and ``+1`` above its upper.  The
        gradient changes with every pivot, so the phase-1 reduced costs
        are recomputed per iteration through the block pricer (a devex
        reference framework has nothing stable to reference here).
        Pivots are short-step — the entering variable blocks at the first
        breakpoint, which includes an infeasible basic *reaching* its
        violated bound (it leaves the basis feasible).  Returns ``None``
        once primal feasible; a local optimum with residual infeasibility
        yields NEEDS_FALLBACK so the dense oracle delivers the verdict.
        """
        sf = self.sf
        stall = 0
        use_bland = False
        last_infeas = math.inf
        while True:
            violations = self.primal_violations()
            below = violations < -FEAS_TOL
            above = violations > FEAS_TOL
            infeas = float(np.sum(np.abs(violations[below | above])))
            if not below.any() and not above.any():
                return None
            if self.iterations >= self.max_iterations:
                return self._bail()

            # Phase-1 reduced costs: d_j = -w_B B^{-1} A_j (w is the
            # infeasibility gradient, zero on every nonbasic column).
            w_basic = np.zeros(sf.m)
            w_basic[below] = -1.0
            w_basic[above] = 1.0
            y = self.factor.btran(w_basic)
            candidate = self._price(y, phase1=True, use_bland=use_bland)
            if candidate is None:
                # Local (hence global) phase-1 optimum with residual
                # infeasibility; let the oracle certify infeasibility.
                return self._bail()
            entering, d_entering = candidate
            if self.status[entering] == AT_UB or (
                self.status[entering] == AT_FREE and d_entering > 0
            ):
                sign = -1.0
            else:
                sign = 1.0

            w = self.entering_column(entering)
            delta = sign * w  # basic variables move by -delta per unit step
            lo_b = sf.lo[self.basic]
            up_b = sf.up[self.basic]
            inside = ~below & ~above
            xv = self.x_basic
            steps = self._steps
            steps.fill(np.inf)
            dec = delta > PIVOT_TOL  # basic decreases as the step grows
            inc = delta < -PIVOT_TOL  # basic increases
            # Breakpoints: a feasible basic blocks at the bound it would
            # cross; an infeasible one blocks where it regains feasibility.
            mask = dec & above
            steps[mask] = (xv[mask] - up_b[mask]) / delta[mask]
            mask = dec & inside
            steps[mask] = (xv[mask] - lo_b[mask]) / delta[mask]
            mask = inc & below
            steps[mask] = (xv[mask] - lo_b[mask]) / delta[mask]
            mask = inc & inside
            steps[mask] = (xv[mask] - up_b[mask]) / delta[mask]
            steps[~np.isfinite(steps)] = np.inf
            span = sf.up[entering] - sf.lo[entering]
            limit = float(np.min(steps)) if sf.m else math.inf
            step = min(limit, span)
            if not math.isfinite(step):
                return self._bail()
            step = max(step, 0.0)

            if span <= limit:
                self.x_basic = self.x_basic - delta * step
                self.status[entering] = AT_UB if sign > 0 else AT_LB
                self.iterations += 1
                self.counters.bound_flips += 1
            else:
                blocking = np.nonzero(steps <= step + FEAS_TOL)[0]
                if use_bland:
                    row = int(min(blocking, key=lambda i: self.basic[i]))
                else:
                    row = int(blocking[np.argmax(np.abs(delta[blocking]))])
                leaving = self.basic[row]
                if abs(w[row]) < PIVOT_TOL:
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()
                    continue
                entering_value = (
                    (sf.up[entering] if self.status[entering] == AT_UB else
                     0.0 if self.status[entering] == AT_FREE else sf.lo[entering])
                    + sign * step
                )
                if delta[row] > 0:
                    leave_status = AT_UB if above[row] else AT_LB
                else:
                    leave_status = AT_LB if below[row] else AT_UB
                self.x_basic = self.x_basic - delta * step
                self.x_basic[row] = entering_value
                self.status[entering] = BASIC
                self.status[leaving] = leave_status
                self.basic[row] = entering
                self.factor.update(row, w)
                self.iterations += 1
                if self.factor.should_refactor():
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()

            if infeas < last_infeas - FEAS_TOL:
                stall = 0
                last_infeas = infeas
            else:
                stall += 1
                if stall >= STALL_LIMIT:
                    use_bland = True

    # -- primal simplex -----------------------------------------------------
    def primal_loop(self) -> Optional[RevisedResult]:
        """Pivot from a primal-feasible basis until no column improves.

        Devex mode (the default) maintains the full reduced-cost vector
        across pivots — pricing is a vectorized argmax of ``d^2/weight``
        with no per-iteration BTRAN — and updates the reference-framework
        weights from the pivot row it computes for the reduced-cost AXPY.
        Dantzig mode reprices blocks from scratch each iteration exactly
        as the legacy engine did.  Both switch to Bland's rule after a
        stall (the classic anti-cycling safeguard).  Returns a final
        result only on unboundedness or trouble; ``None`` means "optimal,
        go finish".
        """
        sf = self.sf
        stall = 0
        use_bland = False
        last_objective = math.inf
        d: Optional[np.ndarray] = None
        weights = self._col_weights
        if self.devex:
            d = self.reduced_costs()
            self.reset_col_weights()
        while True:
            if self.iterations >= self.max_iterations:
                return self._bail()
            if self.devex:
                improving = np.nonzero(self._improving_mask(d))[0]
                if improving.size == 0:
                    return None
                if use_bland:
                    entering = int(improving[0])
                else:
                    d_imp = d[improving]
                    entering = int(improving[int(np.argmax(
                        d_imp * d_imp / weights[improving]
                    ))])
                d_entering = float(d[entering])
            else:
                y = self.factor.btran(sf.cost[self.basic])
                candidate = self._price(y, phase1=False, use_bland=use_bland)
                if candidate is None:
                    return None
                entering, d_entering = candidate
            # Direction of travel: increase from lb (or free with d<0),
            # decrease from ub (or free with d>0).
            if self.status[entering] == AT_UB or (
                self.status[entering] == AT_FREE and d_entering > 0
            ):
                sign = -1.0
            else:
                sign = 1.0

            w = self.entering_column(entering)
            delta = sign * w  # basic variables move by -delta per unit step
            lo_b = sf.lo[self.basic]
            up_b = sf.up[self.basic]
            # Blocking step for each basic variable.
            steps = self._steps
            steps.fill(np.inf)
            decreasing = delta > PIVOT_TOL
            increasing = delta < -PIVOT_TOL
            steps[decreasing] = (self.x_basic[decreasing] - lo_b[decreasing]) / delta[decreasing]
            steps[increasing] = (self.x_basic[increasing] - up_b[increasing]) / delta[increasing]
            span = sf.up[entering] - sf.lo[entering]
            limit = float(np.min(steps)) if sf.m else math.inf
            step = min(limit, span)
            if not math.isfinite(step):
                return RevisedResult(
                    RevisedStatus.UNBOUNDED, None, math.nan, self.iterations, None
                )
            step = max(step, 0.0)

            if span <= limit:
                # Bound flip: the entering variable crosses its whole box
                # — no basis change, so d and the weights are untouched.
                self.x_basic = self.x_basic - delta * step
                self.status[entering] = AT_UB if sign > 0 else AT_LB
                self.iterations += 1
                self.counters.bound_flips += 1
            else:
                blocking = np.nonzero(steps <= step + FEAS_TOL)[0]
                if use_bland:
                    row = int(min(blocking, key=lambda i: self.basic[i]))
                else:
                    row = int(blocking[np.argmax(np.abs(delta[blocking]))])
                leaving = self.basic[row]
                if abs(w[row]) < PIVOT_TOL:
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()
                    if self.devex:
                        d = self.reduced_costs()
                    continue
                entering_value = (
                    (sf.up[entering] if self.status[entering] == AT_UB else
                     0.0 if self.status[entering] == AT_FREE else sf.lo[entering])
                    + sign * step
                )
                if self.devex:
                    # One unit BTRAN + sparsity-aware product per pivot
                    # keeps d current and feeds the weight update.
                    alpha_r = _row_times_matrix(self.factor.btran_unit(row), sf.a)
                    alpha_rq = float(alpha_r[entering])
                    if abs(alpha_rq - w[row]) > DRIFT_TOL * (1.0 + abs(w[row])):
                        if not self.refactor():
                            return self._bail()
                        self.recompute_basics()
                        d = self.reduced_costs()
                        continue
                    theta = float(d[entering]) / alpha_rq
                    if theta != 0.0:
                        d -= theta * alpha_r
                    d[entering] = 0.0
                    gamma_q = float(weights[entering])
                    ratio2 = (alpha_r / alpha_rq) ** 2
                    np.maximum(weights, ratio2 * gamma_q, out=weights)
                    weights[leaving] = max(gamma_q / (alpha_rq * alpha_rq), 1.0)
                    if float(weights.max()) > DEVEX_RESET_LIMIT:
                        self.reset_col_weights()
                self.x_basic = self.x_basic - delta * step
                self.x_basic[row] = entering_value
                self.status[entering] = BASIC
                self.status[leaving] = AT_LB if delta[row] > 0 else AT_UB
                if not math.isfinite(sf.lo[leaving]) and not math.isfinite(sf.up[leaving]):
                    self.status[leaving] = AT_FREE
                self.basic[row] = entering
                self.factor.update(row, w)
                self.iterations += 1
                if self.factor.should_refactor():
                    if not self.refactor():
                        return self._bail()
                    self.recompute_basics()
                    if self.devex:
                        d = self.reduced_costs()

            objective = float(sf.cost[self.basic] @ self.x_basic)
            if objective < last_objective - DUAL_TOL:
                stall = 0
                last_objective = objective
            else:
                stall += 1
                if stall >= STALL_LIMIT:
                    use_bland = True
