"""Persistent worker pool for parallel branch and bound.

One pool of worker processes lives for the whole process (created on the
first parallel solve, reused by every later one, shut down at exit), so
repeated solves — a Pareto sweep, a synthesis service under load — pay
the process-spawn cost once instead of per solve.  Each solve is an
*epoch*:

1. The driver publishes the solve's matrices once through shared memory
   (:mod:`repro.solvers.shm`), resets the pool-lifetime shared primitives
   (incumbent bound, broadcast counter, cancel event, idle counter), and
   broadcasts an epoch descriptor over each worker's control queue.
2. Frontier nodes, encoded as bound deltas against the root bounds
   (:func:`encode_node`), go onto one shared node queue.  Any worker takes
   any node — the queue *is* the work-stealing deque.  In fast mode
   (``SolverOptions(deterministic=False)``) busy workers additionally
   spill half their open list back onto the queue whenever the shared
   idle counter shows a starving peer; in deterministic mode each initial
   subtree is solved whole and never split.
3. Workers report one result message per lease; a shared lease ledger
   (``outstanding``) tracks how many leases are queued or in flight.  A
   donor increments it *before* its spilled nodes become visible on the
   node queue and the driver decrements it per completed lease, so the
   count can only reach zero once every node — original or donated — has
   been reported, regardless of which worker finishes first.

Cancellation is a pool-lifetime ``multiprocessing.Event``: the driver
sets it when the caller's ``should_stop`` fires, every worker polls it
per branch-and-bound node (it is wired in as the worker's
``SolverOptions.should_stop``), and in-flight leases return as cancelled
within one node's latency.  The epoch still drains fully — every queued
node comes back as a cancelled lease — so the pool is immediately
reusable.

A worker death mid-epoch raises :class:`PoolBrokenError` (an ``OSError``)
after the pool is torn down; the caller falls back to solving inline.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from dataclasses import dataclass, replace
from queue import Empty
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CancelledError
from repro.milp.solution import SolveStats
from repro.obs.events import TraceEvent
from repro.obs.sinks import MemoryTraceSink, Tracer
from repro.solvers.bozo import _LPBackend, _Node, _SearchOutcome, _TreeSearch
from repro.solvers.revised import Basis
from repro.solvers.shm import AttachedForm

#: Environment override for the pool's multiprocessing start method
#: (``fork``, ``spawn``, or ``forkserver``); empty picks ``fork`` where
#: available and ``spawn`` elsewhere.
START_METHOD_ENV = "REPRO_POOL_START_METHOD"

#: Seconds a worker (or the driver) waits on an empty queue per poll.
_POLL = 0.05


class PoolBrokenError(OSError):
    """A pool worker died mid-epoch; the pool was torn down."""


# -- node wire encoding ------------------------------------------------------
def encode_node(
    node: _Node,
    root_lb: np.ndarray,
    root_ub: np.ndarray,
    spilled_by: Optional[int] = None,
) -> Tuple:
    """Encode a node as a bound delta against the root bounds.

    Only the entries of ``lb``/``ub`` that differ from the root bounds
    travel, plus the warm-start basis and branching metadata — never a
    matrix and never full bound vectors.  ``spilled_by`` tags mid-search
    donations with the donating worker slot so the driver can tell a
    *stolen* lease (picked up by a different worker) from a re-pick.
    """
    lb_idx = np.nonzero(node.lb != root_lb)[0].astype(np.int32)
    ub_idx = np.nonzero(node.ub != root_ub)[0].astype(np.int32)
    basis = None
    if node.basis is not None:
        basis = (node.basis.basic.copy(), node.basis.status.copy())
    return (
        float(node.bound), int(node.tiebreak), int(node.depth),
        lb_idx, np.ascontiguousarray(node.lb[lb_idx]),
        ub_idx, np.ascontiguousarray(node.ub[ub_idx]),
        basis, int(node.branch_var), node.branch_dir,
        float(node.branch_fraction), spilled_by,
    )


def decode_node(
    payload: Tuple, root_lb: np.ndarray, root_ub: np.ndarray
) -> Tuple[_Node, Optional[int]]:
    """Inverse of :func:`encode_node` against the receiver's root bounds."""
    (bound, tiebreak, depth, lb_idx, lb_val, ub_idx, ub_val,
     basis_payload, branch_var, branch_dir, branch_fraction,
     spilled_by) = payload
    lb = np.array(root_lb, dtype=float)
    lb[lb_idx] = lb_val
    ub = np.array(root_ub, dtype=float)
    ub[ub_idx] = ub_val
    basis = None
    if basis_payload is not None:
        basis = Basis(basis_payload[0], basis_payload[1])
    node = _Node(
        bound, tiebreak, lb, ub, depth, basis=basis,
        branch_var=branch_var, branch_dir=branch_dir,
        branch_fraction=branch_fraction,
    )
    return node, spilled_by


# -- one lease, shared by pool workers and the inline fallback ---------------
def solve_lease(
    form,
    sf,
    options,
    start: float,
    ramp_obj: float,
    root_lp,
    fixed_bounds,
    node: _Node,
    worker_tag: int,
    foreign_best,
    publish,
    trace_enabled: bool,
    spill=None,
) -> Tuple[Optional[_SearchOutcome], SolveStats, List[TraceEvent], bool]:
    """Exhaust one subtree lease; returns (outcome, stats, events, cancelled).

    The lease is solved with dives disabled and a local adoption rule
    seeded with the ramp incumbent: what it reports is a function of the
    subtree alone (broadcasts only prune provably non-improving nodes),
    which is what makes the deterministic merge possible.  ``worker_tag``
    stamps the trace events — the dispatch index in deterministic mode,
    the worker slot in fast mode.  A cooperative cancellation mid-search
    returns ``(None, stats, events, True)``; partial work is discarded.
    """
    stats = SolveStats()
    buffer: Optional[MemoryTraceSink] = None
    tracer: Optional[Tracer] = None
    if trace_enabled:
        buffer = MemoryTraceSink()
        tracer = Tracer(buffer, worker=worker_tag)
    lp = _LPBackend(
        form, options.warm_start, stats, sf=sf, tracer=tracer,
        pricing_block_size=options.pricing_block_size,
        pricing=options.pricing,
    )
    # Each lease re-tightens reduced-cost bounds from its own incumbents
    # only, starting from the bounds the ramp derived — copied, so no
    # cross-lease mutation.
    fixed = None
    if fixed_bounds is not None:
        fixed = (fixed_bounds[0].copy(), fixed_bounds[1].copy())

    def wrapped_publish(objective: float) -> None:
        publish(objective, tracer)

    engine = _TreeSearch(
        options, form, lp,
        start=start,
        incumbent_obj=ramp_obj,
        foreign_best=foreign_best,
        publish=wrapped_publish,
        allow_dives=False,
        allow_cuts=False,
        treat_root_unbounded=False,
        tracer=tracer,
        root_lp=root_lp,
        fixed_bounds=fixed,
        spill=spill,
    )
    try:
        outcome = engine.run([node])
    except CancelledError:
        events = buffer.events if buffer is not None else []
        return None, stats, events, True
    outcome.open_nodes = []  # never ship nodes back through the result queue
    stats.nodes = outcome.nodes
    events = buffer.events if buffer is not None else []
    return outcome, stats, events, False


# -- worker process ----------------------------------------------------------
def _attach_epoch(msg, previous: Optional[AttachedForm]):
    """Build a worker's per-epoch context from an ``("epoch", ...)`` message.

    Returns ``(ctx, attached)`` or ``(None, previous)`` when the segment
    is already gone (the epoch completed before this worker woke up — it
    simply waits for the next one).
    """
    (_, eid, spec, options, start, ramp_obj, root_lp, fixed_bounds,
     deterministic, trace_enabled) = msg
    try:
        attached = AttachedForm(spec)
    except (FileNotFoundError, OSError):
        return None, previous
    if previous is not None:
        previous.close()
    ctx = {
        "epoch": eid,
        "form": attached.form,
        "sf": attached.sf,
        "options": options,
        "start": start,
        "ramp_obj": ramp_obj,
        "root_lp": root_lp,
        "fixed_bounds": fixed_bounds,
        "deterministic": deterministic,
        "trace_enabled": trace_enabled,
    }
    return ctx, attached


def _worker_main(slot: int, ctl_q, node_q, result_q, shared) -> None:
    """Worker entry point: serve epochs until told to stop."""
    attached: Optional[AttachedForm] = None
    try:
        while True:
            msg = ctl_q.get()
            if msg[0] == "stop":
                break
            if msg[0] != "epoch":
                continue
            ctx, attached = _attach_epoch(msg, attached)
            while ctx is not None:
                verdict = _serve_epoch(slot, ctx, node_q, result_q, shared)
                if verdict != "reenter":
                    break
                # A node from a *newer* epoch surfaced before our control
                # message; consume the pending epoch descriptor first.
                msg = ctl_q.get()
                if msg[0] == "stop":
                    return
                ctx, attached = _attach_epoch(msg, attached)
    finally:
        if attached is not None:
            attached.close()


def _serve_epoch(slot: int, ctx, node_q, result_q, shared) -> str:
    """Consume one epoch's node queue; returns ``"done"`` or ``"reenter"``."""
    eid = ctx["epoch"]
    options = replace(
        ctx["options"], should_stop=lambda: shared.cancel.is_set()
    )
    fast = not ctx["deterministic"]
    idle_flagged = False

    # The idle count is per-epoch state (run_epoch zeroes it before each
    # epoch), so both transitions check — under the counter's lock — that
    # this worker's epoch is still the current one.  Without the check, a
    # worker waking up late from epoch N would decrement epoch N+1's
    # freshly reset counter below zero and silently suppress work
    # stealing for the rest of the pool's life.
    def clear_idle() -> None:
        nonlocal idle_flagged
        if idle_flagged:
            idle_flagged = False
            with shared.idle.get_lock():
                if shared.epoch.value == eid:
                    shared.idle.value -= 1

    try:
        while True:
            try:
                msg = node_q.get(timeout=_POLL)
            except Empty:
                if shared.epoch.value != eid:
                    return "done"
                if fast and not idle_flagged:
                    with shared.idle.get_lock():
                        if shared.epoch.value == eid:
                            idle_flagged = True
                            shared.idle.value += 1
                    if idle_flagged:
                        result_q.put(("idle", eid, slot))
                continue
            m_eid = msg[1]
            if m_eid < eid:
                continue  # stale leftover of a finished epoch: drop
            if m_eid > eid:
                node_q.put(msg)  # not ours yet: requeue, switch epochs first
                return "reenter"
            clear_idle()
            result_q.put(_run_lease(slot, ctx, options, msg, node_q, shared))
    finally:
        clear_idle()


def _run_lease(slot: int, ctx, options, msg, node_q, shared) -> Tuple:
    """Process one ``("node", ...)`` message into a ``("done", ...)`` reply."""
    _, eid, lease_id, payload = msg
    form = ctx["form"]
    node, spilled_by = decode_node(payload, form.lb, form.ub)
    stolen = spilled_by is not None and spilled_by != slot
    node_key = (node.tiebreak, node.bound)
    worker_tag = lease_id if ctx["deterministic"] else slot
    if shared.cancel.is_set():
        return ("done", eid, slot, lease_id, node_key, stolen,
                None, SolveStats(), [], 0, True)

    spilled = [0]
    spill_fn = None
    if not ctx["deterministic"]:
        def spill_fn(heap) -> None:
            import heapq

            if shared.idle.value <= 0 or shared.cancel.is_set():
                return
            ordered = sorted(heap)
            give = ordered[1::2]  # donate every other node, keep the best
            if not give:
                return
            heap[:] = ordered[0::2]
            heapq.heapify(heap)
            # Credit the ledger BEFORE the donated nodes become visible:
            # a thief can only pick a node up after the increment, so its
            # completion can never drive ``outstanding`` to zero while the
            # donor's lease (or another donated node) is still open.
            with shared.outstanding.get_lock():
                shared.outstanding.value += len(give)
            for donated in give:
                node_q.put((
                    "node", eid, None,
                    encode_node(donated, form.lb, form.ub, spilled_by=slot),
                ))
            spilled[0] += len(give)

    def foreign_best() -> float:
        return shared.incumbent.value

    def publish(objective: float, tracer: Optional[Tracer]) -> None:
        with shared.incumbent.get_lock():
            if objective < shared.incumbent.value - 1e-12:
                shared.incumbent.value = objective
                shared.broadcasts.value += 1
                if tracer is not None:
                    tracer.emit("incumbent_broadcast", objective=objective)

    outcome, stats, events, cancelled = solve_lease(
        form, ctx["sf"], options, ctx["start"], ctx["ramp_obj"],
        ctx["root_lp"], ctx["fixed_bounds"], node,
        worker_tag=worker_tag, foreign_best=foreign_best, publish=publish,
        trace_enabled=ctx["trace_enabled"], spill=spill_fn,
    )
    return ("done", eid, slot, lease_id, node_key, stolen,
            outcome, stats, events, spilled[0], cancelled)


# -- driver side -------------------------------------------------------------
@dataclass
class LeaseResult:
    """One lease's report back to the driver."""

    slot: int
    lease_id: Optional[int]
    node_key: Tuple[int, float]
    stolen: bool
    outcome: Optional[_SearchOutcome]
    stats: SolveStats
    events: List[TraceEvent]
    cancelled: bool


@dataclass
class EpochReport:
    """Everything one epoch produced."""

    leases: List[LeaseResult]
    broadcasts: int
    idle_slots: List[int]
    cancelled: bool


class WorkerPool:
    """A persistent pool of branch-and-bound worker processes."""

    def __init__(self, size: int) -> None:
        method = os.environ.get(START_METHOD_ENV, "").strip()
        if not method:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        ctx = multiprocessing.get_context(method)
        self.size = size
        self.start_method = method
        # Pool-lifetime shared primitives: multiprocessing synchronization
        # objects cannot travel through queues, so everything workers need
        # is created here, once, and inherited/pickled at process start.
        self.incumbent = ctx.Value("d", float("inf"))
        self.broadcasts = ctx.Value("l", 0)
        self.epoch = ctx.Value("l", 0)
        self.idle = ctx.Value("l", 0)
        self.outstanding = ctx.Value("l", 0)
        self.cancel = ctx.Event()
        self.node_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self._ctl_queues = [ctx.Queue() for _ in range(size)]
        self._epoch_counter = 0
        self._lock = threading.Lock()  # one epoch at a time per pool
        self._procs = []
        try:
            for slot in range(1, size + 1):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(slot, self._ctl_queues[slot - 1], self.node_q,
                          self.result_q, self),
                    daemon=True,
                    name=f"repro-pool-{slot}",
                )
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self.shutdown()
            raise

    def __getstate__(self) -> dict:
        # Workers receive the pool object at process start purely as the
        # carrier of the shared primitives; queues/process handles that
        # cannot (or must not) cross stay behind.
        return {
            "incumbent": self.incumbent,
            "broadcasts": self.broadcasts,
            "epoch": self.epoch,
            "idle": self.idle,
            "outstanding": self.outstanding,
            "cancel": self.cancel,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def alive(self) -> bool:
        """True while every worker process is running."""
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def _require_alive(self) -> None:
        if not self.alive:
            raise PoolBrokenError("a pool worker died")

    def _drain_results(self) -> None:
        while True:
            try:
                self.result_q.get_nowait()
            except Empty:
                return

    def run_epoch(
        self,
        *,
        spec: Dict[str, Any],
        options,
        start: float,
        ramp_obj: float,
        root_lp,
        fixed_bounds,
        subtrees: List[_Node],
        root_lb: np.ndarray,
        root_ub: np.ndarray,
        deterministic: bool,
        trace_enabled: bool,
        should_stop=None,
    ) -> EpochReport:
        """Dispatch ``subtrees`` as one epoch and collect every lease.

        Blocks until the shared lease ledger drains: the ledger starts at
        ``len(subtrees)``, spilling workers credit it before their donated
        nodes hit the queue, and the driver debits one per completed
        lease, so zero means every node has been reported — no thief can
        race the epoch shut while a donor is still running.
        ``should_stop`` is polled while waiting (including while queued
        behind another epoch for the pool lock — a cancellation observed
        there raises :class:`~repro.errors.CancelledError` without
        touching the queues); when it fires mid-epoch the shared cancel
        event is set, the epoch still drains fully (workers answer
        remaining nodes as cancelled within one node's latency), and the
        report comes back with ``cancelled=True``.  Raises
        :class:`PoolBrokenError` — after tearing the pool down — if a
        worker dies mid-epoch.
        """
        while not self._lock.acquire(timeout=_POLL):
            if should_stop is not None and should_stop():
                raise CancelledError(
                    "parallel solve cancelled while queued for the pool"
                )
        try:
            self._require_alive()
            self._epoch_counter += 1
            eid = self._epoch_counter
            self.cancel.clear()
            with self.incumbent.get_lock():
                self.incumbent.value = ramp_obj
                self.broadcasts.value = 0
            with self.idle.get_lock():
                self.idle.value = 0
            with self.outstanding.get_lock():
                self.outstanding.value = len(subtrees)
            self._drain_results()
            self.epoch.value = eid
            msg = ("epoch", eid, spec, options, start, ramp_obj,
                   root_lp, fixed_bounds, deterministic, trace_enabled)
            try:
                for ctl in self._ctl_queues:
                    ctl.put(msg)
                for lease_id, node in enumerate(subtrees, start=1):
                    self.node_q.put((
                        "node", eid, lease_id,
                        encode_node(node, root_lb, root_ub),
                    ))
                return self._collect(eid, should_stop)
            except PoolBrokenError:
                self.cancel.set()
                self.shutdown()
                raise
            finally:
                self.epoch.value = 0
        finally:
            self._lock.release()

    def _collect(self, eid: int, should_stop) -> EpochReport:
        leases: List[LeaseResult] = []
        idle_slots: List[int] = []
        cancelled = False

        def poll_cancel() -> None:
            nonlocal cancelled
            if not cancelled and should_stop is not None and should_stop():
                cancelled = True
                self.cancel.set()

        while self.outstanding.value > 0:
            poll_cancel()
            try:
                msg = self.result_q.get(timeout=_POLL)
            except Empty:
                self._require_alive()
                continue
            if msg[1] != eid:
                continue  # leftover from a cancelled previous epoch
            if msg[0] == "idle":
                idle_slots.append(msg[2])
                continue
            (_, _, slot, lease_id, node_key, stolen,
             outcome, stats, events, spilled, lease_cancelled) = msg
            leases.append(LeaseResult(
                slot=slot, lease_id=lease_id, node_key=node_key,
                stolen=stolen, outcome=outcome, stats=stats, events=events,
                cancelled=lease_cancelled,
            ))
            with self.outstanding.get_lock():
                self.outstanding.value -= 1
        return EpochReport(
            leases=leases,
            broadcasts=int(self.broadcasts.value),
            idle_slots=idle_slots,
            cancelled=cancelled,
        )

    def shutdown(self) -> None:
        """Stop every worker and release the queues; idempotent."""
        for ctl in self._ctl_queues:
            try:
                ctl.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        for q in [self.node_q, self.result_q, *self._ctl_queues]:
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass


_POOL: Optional[WorkerPool] = None
_POOL_GUARD = threading.Lock()
_ATEXIT_REGISTERED = False


def get_pool(size: int) -> WorkerPool:
    """The process-wide pool, created (or regrown) to at least ``size``.

    Raises ``OSError`` when worker processes cannot be created; callers
    fall back to solving inline.
    """
    global _POOL, _ATEXIT_REGISTERED
    with _POOL_GUARD:
        if _POOL is not None and (not _POOL.alive or _POOL.size < size):
            stale = _POOL
            _POOL = None
            if stale.alive:
                # Regrow, not crash recovery: wait for any in-flight
                # epoch to finish before tearing the pool down — another
                # thread's solve must never lose its workers mid-epoch.
                with stale._lock:
                    stale.shutdown()
            else:
                stale.shutdown()
        if _POOL is None:
            _POOL = WorkerPool(size)
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_pool)
                _ATEXIT_REGISTERED = True
        return _POOL


def shutdown_pool() -> None:
    """Tear down the process-wide pool (no-op when none exists)."""
    global _POOL
    with _POOL_GUARD:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None
