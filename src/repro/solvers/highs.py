"""HiGHS backend via :func:`scipy.optimize.milp`.

The from-scratch :class:`~repro.solvers.bozo.BozoSolver` reproduces the
paper's solver technology; this backend provides an independent modern
solver behind the same interface.  The two must agree on optimal
objectives — a property the test suite checks on random instances — and
HiGHS is the default for the largest Example-2 models, where 1991-era
Bozo needed hours (Table IV's runtime column).
"""

from __future__ import annotations

import math
import time
from typing import Dict

import numpy as np
from scipy import optimize, sparse

from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStats, SolveStatus
from repro.obs.sinks import make_tracer
from repro.solvers.base import Solver


class HighsSolver(Solver):
    """MILP solver backed by ``scipy.optimize.milp`` (HiGHS)."""

    name = "highs"

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` with HiGHS via ``scipy.optimize.milp``.

        HiGHS runs as a black box, so tracing is coarse: one
        ``solve_started``, one ``phase`` covering the whole call, and one
        ``solve_done`` carrying the node/LP counts (trace replay reads
        them from there in the absence of per-node events).
        """
        start = time.monotonic()
        tracer = make_tracer(self.options.trace)
        if tracer is not None:
            tracer.emit("solve_started", solver=self.name)
        form = model.to_matrices()
        n = form.c.shape[0]

        constraints = []
        if form.a_ub.size:
            constraints.append(
                optimize.LinearConstraint(sparse.csr_matrix(form.a_ub), -np.inf, form.b_ub)
            )
        if form.a_eq.size:
            constraints.append(
                optimize.LinearConstraint(sparse.csr_matrix(form.a_eq), form.b_eq, form.b_eq)
            )
        bounds = optimize.Bounds(form.lb, form.ub)
        integrality = form.integrality.astype(int)

        options: Dict[str, object] = {"mip_rel_gap": self.options.gap_tolerance}
        if math.isfinite(self.options.time_limit):
            options["time_limit"] = self.options.time_limit
        options["disp"] = bool(self.options.verbose)
        if self.options.node_limit:
            options["node_limit"] = self.options.node_limit

        result = optimize.milp(
            c=form.c,
            constraints=constraints or None,
            bounds=bounds,
            integrality=integrality,
            options=options,
        )
        if result.status not in (0, 1, 2, 3) and result.x is None:
            # HiGHS occasionally aborts with "Solve error" (status 4) on
            # instances its presolve mangles; the same model solves fine
            # with presolve off, so retry once before reporting UNKNOWN.
            # The retry runs on whatever is left of the configured time
            # budget (a status-4 abort near the limit must not double the
            # wall-clock spend); with nothing left, skip it.
            retry_options: Dict[str, object] = {**options, "presolve": False}
            remaining = math.inf
            if math.isfinite(self.options.time_limit):
                remaining = self.options.time_limit - (time.monotonic() - start)
                retry_options["time_limit"] = max(remaining, 0.0)
            if remaining > 0:
                result = optimize.milp(
                    c=form.c,
                    constraints=constraints or None,
                    bounds=bounds,
                    integrality=integrality,
                    options=retry_options,
                )
        elapsed = time.monotonic() - start

        status = {
            0: SolveStatus.OPTIMAL,
            1: SolveStatus.FEASIBLE,  # iteration/time limit with incumbent
            2: SolveStatus.INFEASIBLE,
            3: SolveStatus.UNBOUNDED,
        }.get(result.status, SolveStatus.UNKNOWN)
        if status is SolveStatus.FEASIBLE and result.x is None:
            status = SolveStatus.UNKNOWN

        values: Dict = {}
        objective = math.nan
        if result.x is not None:
            x = np.asarray(result.x, dtype=float)
            x[form.integrality] = np.round(x[form.integrality])
            values = {var: float(x[j]) for j, var in enumerate(form.variables)}
            objective = float(form.c @ x) + form.c0

        bound = objective
        if result.x is not None and getattr(result, "mip_dual_bound", None) is not None:
            bound = float(result.mip_dual_bound) + form.c0

        nodes = int(getattr(result, "mip_node_count", 0) or 0)
        stats = SolveStats(nodes=nodes)
        # HiGHS does not report LP pivot counts through scipy; record the
        # node count as a lower bound on LP solves so telemetry stays
        # comparable across backends.
        stats.lp_solves = nodes
        stats.add_phase("solve", elapsed)

        solution = Solution(
            status=status,
            objective=objective,
            values=values,
            best_bound=bound,
            iterations=nodes,
            solve_seconds=elapsed,
            solver_name=self.name,
            stats=stats,
        )
        if tracer is not None:
            tracer.emit("phase", name="solve", seconds=elapsed)
            tracer.emit(
                "solve_done",
                status=status.value,
                objective=objective,
                best_bound=bound,
                nodes=nodes,
                workers=0,
                seconds=elapsed,
                lp_solves=stats.lp_solves,
            )
        return solution
