"""Common solver interface shared by the from-scratch and scipy backends."""

from __future__ import annotations

import abc
import dataclasses
import math
import warnings
from typing import Callable, Mapping, Optional

from repro.milp.model import Model
from repro.milp.solution import Solution
from repro.obs.progress import ProgressUpdate, print_progress
from repro.obs.sinks import TraceSink


@dataclasses.dataclass
class SolverOptions:
    """Options understood by every backend (backends ignore what they must).

    Attributes:
        time_limit: Wall-clock budget in seconds (``inf`` = none).
        gap_tolerance: Relative MILP gap at which the search may stop.
        integrality_tolerance: How close to an integer an LP value must be.
        node_limit: Maximum branch-and-bound nodes (``0`` = unlimited).
        node_selection: ``"best_first"`` or ``"depth_first"`` (Bozo only).
        branching: ``"pseudocost"`` (default) or ``"most_fractional"``
            (Bozo only).  Pseudocosts learn per-variable objective
            degradation from solved children, which keeps the tree small
            even when the LP returns an unhelpful degenerate vertex;
            most-fractional branching gambles on the vertex it is handed.
        presolve: Run bound-propagation presolve before branch and bound
            (Bozo only; HiGHS presolves internally).
        warm_start: Solve LP relaxations with the incremental revised
            simplex, warm-starting each branch-and-bound child from its
            parent's optimal basis (Bozo only).  ``False`` reproduces the
            original cold-start behavior: a dense two-phase tableau solve
            per node.
        workers: Parallel branch-and-bound workers (Bozo only).  ``1``
            keeps the serial search; ``N > 1`` ramps the tree serially
            until a frontier of open subtrees exists, then dispatches the
            subtrees to a persistent worker pool with a shared incumbent
            bound (see ``deterministic`` for the merge contract).
            Requires ``best_first`` node selection — depth-first searches
            fall back to the serial path.
        deterministic: Parallel merge contract (Bozo only; ignored when
            ``workers == 1``).  ``True`` (default) is the *oracle* mode:
            subtrees are dispatched in deterministic key order, solved
            independently, and merged by replaying incumbents in that
            order — the Solution (status, objective, values, best bound)
            is byte-identical to the ``workers=1`` run.  ``False`` is the
            *fast* mode: frontier nodes go onto a shared queue, any worker
            takes any node, and busy workers spill half their open list
            for idle workers to steal.  The optimal objective and best
            bound are still identical to serial (pruning stays
            provability-conservative), but exploration order is
            nondeterministic, so among alternative optima a different
            vertex may be returned and node counts vary run to run.
        frontier_target: Open-node count at which the parallel ramp stops
            and dispatches subtrees (``0`` = automatic,
            ``max(4 * workers, 8)``).  Exposed mainly so tests can force
            partitioning on tiny trees.
        cutoff: Known valid upper bound on the optimal objective (e.g.
            from a neighboring Pareto point).  Nodes whose LP bound
            exceeds it are pruned before any incumbent exists, which can
            only discard provably non-improving subtrees; the optimal
            objective value is unchanged, though tie-broken alternative
            optima may differ from an unseeded run.  ``None`` disables.
        incumbent: Optional warm incumbent: a mapping of variable *names*
            to values describing a known feasible integral point (e.g. a
            heuristic schedule from :mod:`repro.baselines`).  Bozo
            validates it against the (presolved) model and, when it
            checks out, adopts it before the root node so best-first
            search prunes from node 0.  An infeasible or incomplete seed
            is silently ignored — it can slow the search down but never
            change the optimal objective; like ``cutoff``, tie-broken
            alternative optima may differ from an unseeded run.
        cuts: Root-node cutting-plane mode (Bozo only).  ``"auto"``
            (default) runs a bounded separation loop at the root: Gomory
            mixed-integer cuts from the simplex tableau plus knapsack
            cover cuts from the ``<=`` rows, filtered through a cut pool
            and appended to the standing LP with a dual-simplex warm
            restart per round.  The cut-augmented relaxation is inherited
            by the whole tree (cut-and-branch) and, in a parallel solve,
            published to the workers' shared-memory form, so serial and
            parallel searches branch on the same strengthened LP.
            ``"off"`` disables separation.  Cuts are valid for every
            integral point, so the optimal objective never changes; they
            require the incremental engine (``warm_start=True``) and are
            skipped silently without it.
        cut_rounds: Maximum root separation rounds when ``cuts="auto"``
            (each round separates, appends at most a pool-capped batch,
            and re-solves).  The loop also stops early when no violated
            cut is found or the bound stops improving.
        strong_branching: Root-node strong-branching candidate budget
            (Bozo only; ``0`` disables).  At the root, with pseudocost
            branching, the ``strong_branching`` most-fractional candidates
            are probed in both directions with budgeted dual-simplex
            re-solves and the observed objective degradations initialize
            the pseudocosts — replacing the cold uniform scores that
            otherwise decide the first branchings blind.  Probes reuse the
            warm-start machinery and are counted in
            ``SolveStats.strong_branch_probes``.  Ignored under
            most-fractional branching, which keeps the deterministic
            byte-identity contract of that mode untouched.
        rc_fixing: Reduced-cost fixing mode (Bozo only).  ``"root"``
            (default) derives tree-wide integral-variable bounds from the
            root LP's reduced costs, re-tightened after every improved
            incumbent, and prunes nodes whose branch bounds violate them;
            pruning is provability-conservative (exactly like incumbent
            pruning), so serial/parallel byte-identity is preserved.
            ``"off"`` disables.
        seed: Tie-breaking seed for randomized choices.
        verbose: Deprecated — emit progress lines to stdout.  Use
            ``on_progress`` instead; ``verbose=True`` now substitutes a
            printing callback (and warns) when no callback is set.
        trace: A :class:`~repro.obs.sinks.TraceSink` receiving structured
            solve events (``node_opened``, ``lp_solved``,
            ``incumbent_found``, ...).  ``None`` disables tracing.  The
            sink never crosses a process boundary: parallel subtree
            workers buffer events privately and the driver merges them
            into this sink at join, in dispatch order.
        on_progress: Callback invoked with a
            :class:`~repro.obs.progress.ProgressUpdate` (nodes, incumbent,
            bound, gap, elapsed) at most once per ``progress_interval``
            seconds, plus once at solve end.  A callback that raises is
            disabled for the rest of the solve after a single warning.
        progress_interval: Minimum seconds between ``on_progress`` calls.
        should_stop: Cooperative-cancellation hook.  Polled once per
            branch-and-bound node (and between sweep steps); when it
            returns true the solve raises
            :class:`~repro.errors.CancelledError` instead of producing a
            Solution.  Must be cheap (it sits on the node loop) and
            thread-safe (the job service polls a ``threading.Event``).
            Like ``trace``/``on_progress`` it never crosses a process
            boundary: parallel subtree workers run with it stripped, and
            the driving process polls it between pool operations.
        pricing: Revised-simplex pricing rule (Bozo only).  ``"devex"``
            (default) maintains deterministic devex reference-framework
            weights — the fast path; ``"dantzig"`` restores the legacy
            partial-Dantzig block pricing for byte-identity against
            pre-devex oracles.  Both rules are deterministic, so
            serial/parallel identity holds under either; the optimum
            never changes.
        pricing_block_size: Partial-pricing block width for the revised
            simplex (Bozo only, ``pricing="dantzig"``).  ``0`` picks
            automatically: one block (classic full Dantzig pricing) for
            small models, fixed blocks of 256 columns above 512 columns.
            Pricing is deterministic for any block size; the optimum
            never changes.
        clamp_workers: Cap effective ``workers`` at ``os.cpu_count()``
            (default on).  Requesting more processes than cores makes
            parallel tree search *slower* than serial — the clamp falls
            all the way back to the serial path on a single-core machine.
            The requested count is recorded in
            ``SolveStats.workers_requested`` either way.  ``False``
            restores the literal request (tests force this to exercise
            the pool on small machines).
    """

    time_limit: float = math.inf
    gap_tolerance: float = 1e-9
    integrality_tolerance: float = 1e-6
    node_limit: int = 0
    node_selection: str = "best_first"
    branching: str = "pseudocost"
    presolve: bool = True
    warm_start: bool = True
    workers: int = 1
    deterministic: bool = True
    frontier_target: int = 0
    cutoff: Optional[float] = None
    incumbent: Optional[Mapping[str, float]] = None
    cuts: str = "auto"
    cut_rounds: int = 5
    strong_branching: int = 8
    rc_fixing: str = "root"
    seed: int = 0
    verbose: bool = False
    trace: Optional[TraceSink] = None
    on_progress: Optional[Callable[[ProgressUpdate], None]] = None
    progress_interval: float = 1.0
    should_stop: Optional[Callable[[], bool]] = None
    pricing: str = "devex"
    pricing_block_size: int = 0
    clamp_workers: bool = True


class Solver(abc.ABC):
    """Abstract MILP solver."""

    #: Registry key (e.g. ``"bozo"``); subclasses override.
    name: str = "abstract"

    def __init__(self, options: Optional[SolverOptions] = None) -> None:
        self.options = options or SolverOptions()
        if self.options.verbose:
            warnings.warn(
                "SolverOptions.verbose is deprecated; pass an on_progress "
                "callback instead (verbose currently substitutes the "
                "default printing callback)",
                DeprecationWarning,
                stacklevel=2,
            )
            if self.options.on_progress is None:
                self.options = dataclasses.replace(
                    self.options, on_progress=print_progress
                )

    @abc.abstractmethod
    def solve(self, model: Model) -> Solution:
        """Solve a model and return a :class:`Solution`."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
