"""Common solver interface shared by the from-scratch and scipy backends."""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import Optional

from repro.milp.model import Model
from repro.milp.solution import Solution


@dataclasses.dataclass
class SolverOptions:
    """Options understood by every backend (backends ignore what they must).

    Attributes:
        time_limit: Wall-clock budget in seconds (``inf`` = none).
        gap_tolerance: Relative MILP gap at which the search may stop.
        integrality_tolerance: How close to an integer an LP value must be.
        node_limit: Maximum branch-and-bound nodes (``0`` = unlimited).
        node_selection: ``"best_first"`` or ``"depth_first"`` (Bozo only).
        branching: ``"pseudocost"`` (default) or ``"most_fractional"``
            (Bozo only).  Pseudocosts learn per-variable objective
            degradation from solved children, which keeps the tree small
            even when the LP returns an unhelpful degenerate vertex;
            most-fractional branching gambles on the vertex it is handed.
        presolve: Run bound-propagation presolve before branch and bound
            (Bozo only; HiGHS presolves internally).
        warm_start: Solve LP relaxations with the incremental revised
            simplex, warm-starting each branch-and-bound child from its
            parent's optimal basis (Bozo only).  ``False`` reproduces the
            original cold-start behavior: a dense two-phase tableau solve
            per node.
        seed: Tie-breaking seed for randomized choices.
        verbose: Emit progress lines to stdout.
    """

    time_limit: float = math.inf
    gap_tolerance: float = 1e-9
    integrality_tolerance: float = 1e-6
    node_limit: int = 0
    node_selection: str = "best_first"
    branching: str = "pseudocost"
    presolve: bool = True
    warm_start: bool = True
    seed: int = 0
    verbose: bool = False


class Solver(abc.ABC):
    """Abstract MILP solver."""

    #: Registry key (e.g. ``"bozo"``); subclasses override.
    name: str = "abstract"

    def __init__(self, options: Optional[SolverOptions] = None) -> None:
        self.options = options or SolverOptions()

    @abc.abstractmethod
    def solve(self, model: Model) -> Solution:
        """Solve a model and return a :class:`Solution`."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
