"""Parallel branch and bound: subtree dispatch over a persistent pool.

The driver behind ``BozoSolver(workers=N)``.  The strategy is *ramp then
dispatch*:

1. **Ramp** — the tree is searched serially (dives and all, an exact
   prefix of the ``workers=1`` run) until the open list holds
   ``frontier_target`` nodes (default ``max(4 * workers, 8)``).
2. **Publish** — the solve's matrices (matrix form, standard form, CSC
   arrays) go into one ``multiprocessing.shared_memory`` segment
   (:mod:`repro.solvers.shm`); the persistent worker pool
   (:mod:`repro.solvers.pool`) attaches zero-copy.  Nothing is inherited
   through ``fork``, so any start method works and a worker process is
   reused across solves.
3. **Dispatch** — the open nodes, sorted by their deterministic
   ``(bound, path id)`` heap key, go onto the pool's shared node queue
   encoded as bound deltas.  Any worker takes any node.  In *fast* mode
   (``SolverOptions(deterministic=False)``) busy workers also spill half
   their open list back onto the queue whenever the shared idle counter
   shows a starving peer — idle workers steal instead of waiting for the
   longest subtree.
4. **Broadcast** — whenever a worker improves on its local incumbent it
   publishes the objective into a shared value; other workers prune nodes
   whose LP bound is *strictly worse* than the broadcast.  Strictness
   matters: conservative cross-worker pruning can only remove provably
   non-improving subtrees, so each lease's result is independent of
   broadcast timing.
5. **Merge** — in *deterministic* mode (the default, and the oracle the
   fast mode is tested against) subtree incumbents are replayed in their
   ``(bound, path id)`` key order with the serial adoption rule, which
   reproduces the serial incumbent — the merged Solution is
   byte-identical to the ``workers=1`` run.  In fast mode incumbents are
   merged best-objective-first: the optimal *objective* and best bound
   still equal the serial run's (pruning is conservative in both modes),
   but among alternative optima a different vertex may be returned and
   node counts vary run to run.

Cancellation reaches workers through the pool's shared event: the driver
polls ``options.should_stop`` while leases are in flight and sets the
event, which every worker observes within one node (it is wired in as
the worker-side ``should_stop``).  When the pool cannot be created or a
worker dies mid-epoch, the subtrees are solved inline in dispatch order —
the same lease code path, minus the parallelism — so results never depend
on platform.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.errors import CancelledError
from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStats
from repro.obs.progress import ProgressReporter
from repro.obs.sinks import Tracer, make_tracer
from repro.solvers.bozo import (
    BozoSolver,
    _emit_solve_done,
    _LPBackend,
    _Node,
    _SearchOutcome,
    _TreeSearch,
)
from repro.solvers.pool import (
    EpochReport,
    LeaseResult,
    PoolBrokenError,
    get_pool,
    solve_lease,
)
from repro.solvers.shm import FormPublication


class _InlineShared:
    """Driver-local incumbent sharing for the inline fallback path."""

    def __init__(self, value: float) -> None:
        self.value = value
        self.broadcasts = 0

    def foreign_best(self) -> float:
        return self.value

    def publish(self, objective: float, tracer: Optional[Tracer]) -> None:
        if objective < self.value - 1e-12:
            self.value = objective
            self.broadcasts += 1
            if tracer is not None:
                tracer.emit("incumbent_broadcast", objective=objective)


def _solve_epoch_inline(
    form,
    sf,
    options,
    worker_options,
    start: float,
    ramp_obj: float,
    root_lp,
    fixed_bounds,
    subtrees: List[_Node],
) -> EpochReport:
    """Fallback: solve every lease in dispatch order, polling cancellation.

    No stealing happens inline (there is nobody to steal), so fast mode
    degrades to the deterministic dispatch order — which satisfies the
    fast-mode contract trivially.  The leases run in the driver process,
    so the caller's ``should_stop`` closure is wired straight into each
    lease: cancellation is observed within one node here too, not merely
    between subtrees.
    """
    lease_options = worker_options
    if options.should_stop is not None:
        lease_options = replace(worker_options, should_stop=options.should_stop)
    shared = _InlineShared(ramp_obj)
    leases: List[LeaseResult] = []
    for lease_id, node in enumerate(subtrees, start=1):
        if options.should_stop is not None and options.should_stop():
            raise CancelledError(
                "parallel solve cancelled between inline subtrees"
            )
        outcome, stats, events, cancelled = solve_lease(
            form, sf, lease_options, start, ramp_obj, root_lp, fixed_bounds,
            node, worker_tag=lease_id,
            foreign_best=shared.foreign_best, publish=shared.publish,
            trace_enabled=options.trace is not None,
        )
        leases.append(LeaseResult(
            slot=0, lease_id=lease_id,
            node_key=(node.tiebreak, node.bound), stolen=False,
            outcome=outcome, stats=stats, events=events, cancelled=cancelled,
        ))
        if cancelled:
            return EpochReport(
                leases=leases, broadcasts=shared.broadcasts,
                idle_slots=[], cancelled=True,
            )
    return EpochReport(
        leases=leases, broadcasts=shared.broadcasts,
        idle_slots=[], cancelled=False,
    )


def solve_parallel(
    solver: BozoSolver, model: Model, workers: Optional[int] = None
) -> Solution:
    """Parallel solve entry point used by :meth:`BozoSolver.solve`.

    ``workers`` is the *effective* process count (after the CPU-count
    clamp in :meth:`BozoSolver.solve`); ``None`` uses the requested
    ``options.workers`` unclamped.  The requested count is always
    recorded in ``SolveStats.workers_requested``.
    """
    options = solver.options
    effective = workers if workers is not None else options.workers
    deterministic = options.deterministic
    start = time.monotonic()
    stats = SolveStats()
    stats.workers_requested = options.workers
    tracer = make_tracer(options.trace)
    reporter = ProgressReporter(
        options.on_progress, options.progress_interval, start=start
    )
    if tracer is not None:
        tracer.emit("solve_started", solver=solver.name)
    prepared = solver._prepared_form(model, stats, start, tracer=tracer)
    if isinstance(prepared, Solution):
        prepared.stats.workers = effective
        solver.last_ramp_stats = dataclasses.replace(
            stats, phase_seconds=dict(stats.phase_seconds)
        )
        solver.last_worker_stats = []
        solver.last_root_cuts = []
        _emit_solve_done(tracer, prepared)
        return prepared
    form = prepared

    lp = _LPBackend(
        form, options.warm_start, stats, tracer=tracer,
        pricing_block_size=options.pricing_block_size,
        pricing=options.pricing,
    )
    ramp = _TreeSearch(
        options, form, lp, start=start, tracer=tracer, reporter=reporter
    )
    if options.incumbent is not None:
        ramp.seed_incumbent(options.incumbent)
    frontier_target = options.frontier_target or max(4 * effective, 8)
    root = _Node(-math.inf, 1, form.lb.copy(), form.ub.copy())
    outcome = ramp.run([root], frontier_target=frontier_target)
    solver.last_root_cuts = ramp.applied_cuts

    stats.workers = effective
    stats.nodes = outcome.nodes
    if not outcome.open_nodes:
        # The ramp exhausted the tree (or hit a limit / unboundedness)
        # before a frontier existed: nothing to parallelize.
        solver.last_ramp_stats = dataclasses.replace(
            stats, phase_seconds=dict(stats.phase_seconds)
        )
        solver.last_worker_stats = []
        return solver._assemble(
            form, outcome, stats, start, tracer=tracer, reporter=reporter
        )

    subtrees = sorted(outcome.open_nodes)  # (bound, path id) dispatch order
    stats.subtrees_dispatched = len(subtrees)
    if tracer is not None:
        for index, node in enumerate(subtrees, start=1):
            tracer.emit(
                "subtree_dispatched",
                subtree=index,
                node=node.tiebreak,
                bound=node.bound,
            )

    # Sinks and callbacks never cross the process boundary: workers buffer
    # events privately and never report progress, so both are stripped from
    # the per-worker options.  should_stop is replaced worker-side by a
    # poll of the pool's shared cancel event — which the driver sets when
    # the caller's hook fires — so cancellation actually reaches in-flight
    # leases (a pickled copy of the caller's closure never could).
    # Cuts are also stripped: separation is a root-node (ramp) activity and
    # the workers inherit the cut-augmented form through shared memory —
    # solve_lease additionally hard-disables cuts via ``allow_cuts=False``.
    worker_options = replace(
        options, workers=1, frontier_target=0, cuts="off",
        trace=None, on_progress=None, verbose=False, should_stop=None,
    )
    root_lp = (
        (ramp.root_obj, ramp.root_x, ramp.root_rc)
        if ramp.root_rc is not None
        else None
    )
    fixed_bounds = (
        (ramp.fix_lb, ramp.fix_ub) if ramp.fix_lb is not None else None
    )

    report: Optional[EpochReport] = None
    try:
        worker_pool = get_pool(effective)
    except (OSError, ValueError):  # cannot create processes: degrade
        worker_pool = None
    if worker_pool is not None:
        try:
            # The publication owns the shared-memory segment; the context
            # manager releases it on every exit path — normal completion,
            # cancellation, pool crash, or any other exception.
            with FormPublication(form, lp.sf) as publication:
                report = worker_pool.run_epoch(
                    spec=publication.spec,
                    options=worker_options,
                    start=start,
                    ramp_obj=outcome.incumbent_obj,
                    root_lp=root_lp,
                    fixed_bounds=fixed_bounds,
                    subtrees=subtrees,
                    root_lb=form.lb,
                    root_ub=form.ub,
                    deterministic=deterministic,
                    trace_enabled=options.trace is not None,
                    should_stop=options.should_stop,
                )
        except PoolBrokenError:
            # Partial results are discarded wholesale: re-solving every
            # subtree inline from the ramp state is correct in both modes.
            report = None
    if report is None:
        report = _solve_epoch_inline(
            form, lp.sf, options, worker_options, start,
            outcome.incumbent_obj, root_lp, fixed_bounds, subtrees,
        )
    if report.cancelled:
        raise CancelledError(
            "parallel solve cancelled while subtrees were in flight"
        )

    # Forward buffered worker events into the parent sink.  Deterministic
    # mode groups by dispatch index in dispatch order (the serial layout);
    # fast mode groups by worker slot in slot order, arrival order within
    # a slot — replay folds per-worker groups in ascending id either way.
    if deterministic:
        ordered = sorted(report.leases, key=lambda lease: lease.lease_id)
        groups = [[lease] for lease in ordered]
    else:
        by_slot: Dict[int, List[LeaseResult]] = {}
        for lease in report.leases:
            by_slot.setdefault(lease.slot, []).append(lease)
        groups = [by_slot[slot] for slot in sorted(by_slot)]
    if tracer is not None:
        for group in groups:
            for lease in group:
                for event in lease.events:
                    tracer.sink.emit(event)
        for lease in report.leases:
            if lease.stolen:
                tracer.emit(
                    "subtree_stolen",
                    node=lease.node_key[0],
                    bound=lease.node_key[1],
                    thief=lease.slot,
                )
        for slot in report.idle_slots:
            tracer.emit("worker_idle", slot=slot)

    # Merge subtree incumbents into the ramp state.  Deterministic mode
    # replays them in discovery-key order with the serial adoption rule
    # (byte-identity); fast mode adopts best-objective-first with the
    # same key as a stable tie-break (objective identity).
    merged = _SearchOutcome(
        incumbent_x=outcome.incumbent_x,
        incumbent_obj=outcome.incumbent_obj,
        incumbent_key=outcome.incumbent_key,
        nodes=outcome.nodes,
        root_unbounded=outcome.root_unbounded,
    )
    candidates = [
        lease.outcome for lease in report.leases
        if lease.outcome is not None and lease.outcome.incumbent_x is not None
    ]
    if deterministic:
        candidates.sort(key=lambda res: res.incumbent_key)
    else:
        candidates.sort(key=lambda res: (res.incumbent_obj, res.incumbent_key))
    for res in candidates:
        if res.incumbent_obj < merged.incumbent_obj - 1e-12:
            merged.incumbent_x = res.incumbent_x
            merged.incumbent_obj = res.incumbent_obj
            merged.incumbent_key = res.incumbent_key
            if tracer is not None:
                tracer.emit(
                    "incumbent_found",
                    objective=merged.incumbent_obj,
                    node=merged.incumbent_key[1],
                    source="merge",
                )

    open_bounds: List[float] = []
    for lease in report.leases:
        res = lease.outcome
        if res is None:
            continue
        merged.nodes += res.nodes
        if res.hit_limit:
            merged.hit_limit = True
            if res.best_open_bound > -math.inf:
                open_bounds.append(res.best_open_bound)
    if merged.hit_limit:
        merged.best_open_bound = min(open_bounds) if open_bounds else -math.inf

    stats.subtrees_stolen = sum(1 for lease in report.leases if lease.stolen)
    stats.worker_idle_waits = len(report.idle_slots)
    solver.last_ramp_stats = dataclasses.replace(
        stats, phase_seconds=dict(stats.phase_seconds)
    )
    worker_stats: List[SolveStats] = []
    for group in groups:
        group_stats = SolveStats()
        for lease in group:
            group_stats.merge(lease.stats)
        worker_stats.append(group_stats)
    solver.last_worker_stats = worker_stats
    for wstats in worker_stats:
        stats.merge(wstats)
    stats.incumbent_broadcasts = report.broadcasts
    return solver._assemble(
        form, merged, stats, start, tracer=tracer, reporter=reporter
    )


class ParallelBozoSolver(BozoSolver):
    """:class:`BozoSolver` that defaults to one worker per CPU core.

    Registered as ``"bozo-parallel"``.  Equivalent to requesting
    ``bozo`` with ``SolverOptions(workers=os.cpu_count())``; provided so
    callers that only pick solvers by name can opt into parallel search.
    """

    name = "bozo-parallel"

    def __init__(self, options=None) -> None:
        super().__init__(options)
        if self.options.workers <= 1:
            self.options = replace(
                self.options, workers=max(2, os.cpu_count() or 2)
            )
