"""Parallel branch and bound: subtree dispatch with a shared incumbent.

The driver behind ``BozoSolver(workers=N)``.  The strategy is *ramp then
partition*:

1. **Ramp** — the tree is searched serially (dives and all, an exact
   prefix of the ``workers=1`` run) until the open list holds
   ``frontier_target`` nodes (default ``max(4 * workers, 8)``).
2. **Partition** — the open nodes, sorted by their deterministic
   ``(bound, path id)`` heap key, become subtree work units shipped to a
   fork-based :mod:`multiprocessing` pool.  The standard form is
   inherited through the fork (and registered in the shared-form registry
   so each :class:`~repro.solvers.bozo._Node` pickles as a bound delta,
   never a matrix copy).
3. **Broadcast** — whenever a worker improves on its local incumbent it
   publishes the objective into a shared ``multiprocessing.Value``; other
   workers prune nodes whose LP bound is *strictly worse* than the
   broadcast value.  Strictness matters: conservative cross-worker
   pruning can only remove provably non-improving subtrees, so each
   worker's result is independent of broadcast timing.
4. **Merge** — subtree incumbents, tagged with the ``(bound, path id)``
   of the node that produced them, are replayed in that key order with
   the serial adoption rule (strict improvement over the running best).
   Because the serial best-first search pops nodes in exactly that lex
   order, the fold reproduces the serial incumbent — same objective,
   same variable values — and the merged Solution is byte-identical to
   the ``workers=1`` run.

When ``fork`` is unavailable (non-POSIX platforms) or the pool cannot be
created, the subtrees are solved inline in dispatch order — the same
code path, minus the parallelism — so results never depend on platform.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CancelledError
from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStats
from repro.obs.events import TraceEvent
from repro.obs.progress import ProgressReporter
from repro.obs.sinks import MemoryTraceSink, Tracer, make_tracer
from repro.solvers.bozo import (
    BozoSolver,
    _emit_solve_done,
    _LPBackend,
    _Node,
    _SearchOutcome,
    _TreeSearch,
)
from repro.solvers.revised import clear_shared_forms, register_shared_form

#: Fork-inherited per-pool context.  Set in the parent immediately before
#: the pool is created; child processes receive it through the fork and
#: never unpickle the matrix form or the standard-form factorization.
_WORKER_CTX: Dict[str, Any] = {}


class _InlineValue:
    """Duck-typed stand-in for ``multiprocessing.Value`` in inline mode."""

    def __init__(self, value: float) -> None:
        self.value = value

    def get_lock(self):  # pragma: no cover - trivial
        import contextlib

        return contextlib.nullcontext()


def _publish(objective: float, tracer: Optional[Tracer] = None) -> None:
    """Broadcast a strictly-improving incumbent objective to all workers.

    The ``incumbent_broadcast`` trace event is emitted under the shared
    lock, exactly when (and only when) the broadcast actually lowered the
    shared value — so a trace's broadcast-event count always equals the
    ``incumbent_broadcasts`` counter.
    """
    shared = _WORKER_CTX["incumbent"]
    counter = _WORKER_CTX["broadcasts"]
    with shared.get_lock():
        if objective < shared.value - 1e-12:
            shared.value = objective
            counter.value += 1
            if tracer is not None:
                tracer.emit("incumbent_broadcast", objective=objective)


def _solve_subtree(
    job: Tuple[int, _Node],
) -> Tuple[_SearchOutcome, SolveStats, List[TraceEvent]]:
    """Worker entry point: exhaust one subtree, report incumbent + stats.

    ``job`` is ``(worker id, subtree root)``; workers are numbered from 1
    in dispatch order.  Runs with dives disabled and a *local* adoption
    rule seeded with the ramp incumbent objective: what this subtree
    reports is a function of the subtree alone, never of what other
    workers broadcast (broadcasts only prune provably non-improving
    nodes).  That independence is what makes the merge deterministic.

    When the parent has a trace sink, events are buffered in a private
    in-memory sink (sinks never cross the process boundary) and shipped
    back in the returned tuple for the driver to merge in dispatch order.
    """
    worker_id, node = job
    ctx = _WORKER_CTX
    shared = ctx["incumbent"]
    stats = SolveStats()
    tracer: Optional[Tracer] = None
    buffer: Optional[MemoryTraceSink] = None
    if ctx.get("trace_enabled"):
        buffer = MemoryTraceSink()
        tracer = Tracer(buffer, worker=worker_id)
    lp = _LPBackend(
        ctx["form"], ctx["warm_start"], stats, sf=ctx["sf"], tracer=tracer,
        pricing_block_size=ctx["options"].pricing_block_size,
    )
    # Each worker re-tightens reduced-cost bounds from its *own* incumbents
    # only, starting from the bounds the ramp derived — copied, so inline
    # mode matches fork mode (no cross-subtree mutation).
    fixed = ctx.get("fixed_bounds")
    if fixed is not None:
        fixed = (fixed[0].copy(), fixed[1].copy())
    engine = _TreeSearch(
        ctx["options"],
        ctx["form"],
        lp,
        start=ctx["start"],
        incumbent_obj=ctx["ramp_obj"],
        foreign_best=lambda: shared.value,
        publish=lambda objective: _publish(objective, tracer),
        allow_dives=False,
        treat_root_unbounded=False,
        tracer=tracer,
        root_lp=ctx.get("root_lp"),
        fixed_bounds=fixed,
    )
    outcome = engine.run([node])
    outcome.open_nodes = []  # never ship nodes back
    stats.nodes = outcome.nodes
    return outcome, stats, buffer.events if buffer is not None else []


def solve_parallel(
    solver: BozoSolver, model: Model, workers: Optional[int] = None
) -> Solution:
    """Parallel solve entry point used by :meth:`BozoSolver.solve`.

    ``workers`` is the *effective* process count (after the CPU-count
    clamp in :meth:`BozoSolver.solve`); ``None`` uses the requested
    ``options.workers`` unclamped.  The requested count is always
    recorded in ``SolveStats.workers_requested``.
    """
    options = solver.options
    effective = workers if workers is not None else options.workers
    start = time.monotonic()
    stats = SolveStats()
    stats.workers_requested = options.workers
    tracer = make_tracer(options.trace)
    reporter = ProgressReporter(
        options.on_progress, options.progress_interval, start=start
    )
    if tracer is not None:
        tracer.emit("solve_started", solver=solver.name)
    prepared = solver._prepared_form(model, stats, start, tracer=tracer)
    if isinstance(prepared, Solution):
        prepared.stats.workers = effective
        solver.last_ramp_stats = dataclasses.replace(
            stats, phase_seconds=dict(stats.phase_seconds)
        )
        solver.last_worker_stats = []
        _emit_solve_done(tracer, prepared)
        return prepared
    form = prepared

    lp = _LPBackend(
        form, options.warm_start, stats, tracer=tracer,
        pricing_block_size=options.pricing_block_size,
    )
    ramp = _TreeSearch(
        options, form, lp, start=start, tracer=tracer, reporter=reporter
    )
    if options.incumbent is not None:
        ramp.seed_incumbent(options.incumbent)
    frontier_target = options.frontier_target or max(4 * effective, 8)
    root = _Node(-math.inf, 1, form.lb.copy(), form.ub.copy())
    outcome = ramp.run([root], frontier_target=frontier_target)

    stats.workers = effective
    stats.nodes = outcome.nodes
    if not outcome.open_nodes:
        # The ramp exhausted the tree (or hit a limit / unboundedness)
        # before a frontier existed: nothing to parallelize.
        solver.last_ramp_stats = dataclasses.replace(
            stats, phase_seconds=dict(stats.phase_seconds)
        )
        solver.last_worker_stats = []
        return solver._assemble(
            form, outcome, stats, start, tracer=tracer, reporter=reporter
        )

    subtrees = sorted(outcome.open_nodes)  # (bound, path id) dispatch order
    stats.subtrees_dispatched = len(subtrees)
    if tracer is not None:
        for index, node in enumerate(subtrees, start=1):
            tracer.emit(
                "subtree_dispatched",
                subtree=index,
                node=node.tiebreak,
                bound=node.bound,
            )
    share_key: Optional[str] = None
    if lp.sf is not None:
        share_key = register_shared_form(lp.sf, form.lb, form.ub)
        for node in subtrees:
            node.ref_key = share_key

    pool_size = min(effective, len(subtrees))
    incumbent: Any
    broadcasts: Any
    try:
        mp = multiprocessing.get_context("fork")
        incumbent = mp.Value("d", outcome.incumbent_obj)
        broadcasts = mp.Value("l", 0)
    except ValueError:  # fork unavailable (e.g. Windows): inline mode
        mp = None
        incumbent = _InlineValue(outcome.incumbent_obj)
        broadcasts = _InlineValue(0)

    _WORKER_CTX.clear()
    _WORKER_CTX.update(
        form=form,
        sf=lp.sf,
        warm_start=options.warm_start,
        # Sinks and callbacks never cross the process boundary: workers
        # buffer events privately (see _solve_subtree) and never report
        # progress, so both are stripped from the per-worker options —
        # as is should_stop (a forked copy of the caller's flag would
        # never fire; the driver polls it between pool operations).
        options=replace(
            options, workers=1, frontier_target=0,
            trace=None, on_progress=None, verbose=False, should_stop=None,
        ),
        start=start,
        ramp_obj=outcome.incumbent_obj,
        incumbent=incumbent,
        broadcasts=broadcasts,
        trace_enabled=options.trace is not None,
        root_lp=(
            (ramp.root_obj, ramp.root_x, ramp.root_rc)
            if ramp.root_rc is not None
            else None
        ),
        fixed_bounds=(
            (ramp.fix_lb, ramp.fix_ub) if ramp.fix_lb is not None else None
        ),
    )
    jobs = list(enumerate(subtrees, start=1))

    def solve_inline(pending_jobs):
        """Fallback path: solve subtrees in dispatch order, polling cancel."""
        inline = []
        for job in pending_jobs:
            if options.should_stop is not None and options.should_stop():
                raise CancelledError(
                    "parallel solve cancelled between inline subtrees"
                )
            inline.append(_solve_subtree(job))
        return inline

    try:
        results: List[Tuple[_SearchOutcome, SolveStats, List[TraceEvent]]]
        if mp is not None:
            try:
                with mp.Pool(pool_size) as pool:
                    async_result = pool.map_async(_solve_subtree, jobs)
                    # The driver polls the cancellation hook while the
                    # pool works: workers run with should_stop stripped
                    # (a forked flag copy would never fire), so this loop
                    # is where a cancel request lands in parallel mode.
                    while not async_result.ready():
                        if options.should_stop is not None and options.should_stop():
                            pool.terminate()
                            raise CancelledError(
                                "parallel solve cancelled while subtrees "
                                "were in flight"
                            )
                        async_result.wait(0.05)
                    results = async_result.get()
            except OSError:  # pool creation failed: degrade gracefully
                incumbent = _InlineValue(outcome.incumbent_obj)
                broadcasts = _InlineValue(0)
                _WORKER_CTX.update(incumbent=incumbent, broadcasts=broadcasts)
                results = solve_inline(jobs)
        else:
            results = solve_inline(jobs)
    finally:
        _WORKER_CTX.clear()
        if share_key is not None:
            clear_shared_forms()
            lp.sf.share_key = None

    # Forward buffered worker events into the parent sink, grouped by
    # worker in dispatch order — deterministic file layout; the monotonic
    # timestamps allow temporal reconstruction when needed.
    if tracer is not None:
        for _, _, events in results:
            for event in events:
                tracer.sink.emit(event)

    # Deterministic merge: replay subtree incumbents in discovery-key
    # order with the serial adoption rule, starting from the ramp state.
    merged = _SearchOutcome(
        incumbent_x=outcome.incumbent_x,
        incumbent_obj=outcome.incumbent_obj,
        incumbent_key=outcome.incumbent_key,
        nodes=outcome.nodes,
        root_unbounded=outcome.root_unbounded,
    )
    candidates = sorted(
        (res for res, _, _ in results if res.incumbent_x is not None),
        key=lambda res: res.incumbent_key,
    )
    for res in candidates:
        if res.incumbent_obj < merged.incumbent_obj - 1e-12:
            merged.incumbent_x = res.incumbent_x
            merged.incumbent_obj = res.incumbent_obj
            merged.incumbent_key = res.incumbent_key
            if tracer is not None:
                tracer.emit(
                    "incumbent_found",
                    objective=merged.incumbent_obj,
                    node=merged.incumbent_key[1],
                    source="merge",
                )

    worker_stats: List[SolveStats] = []
    open_bounds: List[float] = []
    for res, wstats, _ in results:
        merged.nodes += res.nodes
        if res.hit_limit:
            merged.hit_limit = True
            if res.best_open_bound > -math.inf:
                open_bounds.append(res.best_open_bound)
        worker_stats.append(wstats)
    if merged.hit_limit:
        merged.best_open_bound = min(open_bounds) if open_bounds else -math.inf

    solver.last_ramp_stats = dataclasses.replace(
        stats, phase_seconds=dict(stats.phase_seconds)
    )
    solver.last_worker_stats = worker_stats
    for wstats in worker_stats:
        stats.merge(wstats)
    stats.incumbent_broadcasts = int(broadcasts.value)
    return solver._assemble(
        form, merged, stats, start, tracer=tracer, reporter=reporter
    )


class ParallelBozoSolver(BozoSolver):
    """:class:`BozoSolver` that defaults to one worker per CPU core.

    Registered as ``"bozo-parallel"``.  Equivalent to requesting
    ``bozo`` with ``SolverOptions(workers=os.cpu_count())``; provided so
    callers that only pick solvers by name can opt into parallel search.
    """

    name = "bozo-parallel"

    def __init__(self, options=None) -> None:
        super().__init__(options)
        if self.options.workers <= 1:
            self.options = replace(
                self.options, workers=max(2, os.cpu_count() or 2)
            )
