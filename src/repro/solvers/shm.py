"""Shared-memory publication of a solve's immutable matrix data.

Parallel branch and bound ships each solve's matrices to pool workers
exactly once: the driver packs the (presolved) :class:`MatrixForm`
arrays, the :class:`~repro.solvers.revised.StandardFormLP` arrays, and —
when SciPy is available — the CSC factorization input into a single
``multiprocessing.shared_memory`` segment, and workers attach zero-copy.
This replaces the old fork-inherited shared-form registry: it works under
any start method (``spawn`` included, which unbreaks non-POSIX
platforms), and segment lifetime is explicit instead of riding on
``fork`` semantics.

Ownership contract:

* :class:`FormPublication` (driver side) is a context manager.  The
  segment is created in ``__init__`` and *always* released — closed and
  unlinked — in ``close()``/``__exit__``, on every exit path including
  exceptions, cancellation, and pool crashes.  Publications created by
  this process are tracked in a module-level table so tests can assert
  nothing leaked (:func:`live_segments`).
* :func:`attach_form` (worker side) maps the segment read-only for the
  big two-dimensional matrices and *copies* the small one-dimensional
  vectors (bounds, costs, right-hand sides) — those are mutated per node
  by the LP backend and must be private per worker.  The worker-side
  handle unregisters itself from the worker's ``resource_tracker``
  (attaching registers the segment a second time on CPython < 3.13,
  which would otherwise unlink the driver's segment when the worker
  exits).
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.milp.model import MatrixForm
from repro.solvers.revised import HAVE_SPARSE, StandardFormLP

#: Byte alignment for every packed array (generous for any dtype here).
_ALIGN = 64

#: Names of segments created by this process and not yet released.
_LIVE: Dict[str, "FormPublication"] = {}


def live_segments() -> Tuple[str, ...]:
    """Names of publications this process created and has not released.

    Empty whenever no parallel solve is in flight — the leak-check tests
    assert exactly that after solves, cancellations, and pool crashes.
    """
    return tuple(sorted(_LIVE))


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop a worker-side attach from this process's resource tracker.

    On CPython < 3.13 ``SharedMemory(name=...)`` registers the segment
    with the attaching process's resource tracker as if it owned it; when
    that process exits, the tracker unlinks a segment it never created.
    Workers call this right after attaching so ownership stays with the
    driver.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker absent (Windows) or API drift
        pass


class FormPublication:
    """Driver-side owner of one solve's shared-memory segment.

    Packs the immutable arrays of ``form`` (and of ``sf`` when the solve
    uses the incremental LP engine) into one segment and exposes a
    picklable :attr:`spec` describing the layout.  Use as a context
    manager; :meth:`close` is idempotent and safe to call from ``finally``
    blocks on any exit path.
    """

    def __init__(self, form: MatrixForm, sf: Optional[StandardFormLP]) -> None:
        arrays: Dict[str, np.ndarray] = {
            "c": np.ascontiguousarray(form.c, dtype=float),
            "a_ub": np.ascontiguousarray(form.a_ub, dtype=float),
            "b_ub": np.ascontiguousarray(form.b_ub, dtype=float),
            "a_eq": np.ascontiguousarray(form.a_eq, dtype=float),
            "b_eq": np.ascontiguousarray(form.b_eq, dtype=float),
            "lb": np.ascontiguousarray(form.lb, dtype=float),
            "ub": np.ascontiguousarray(form.ub, dtype=float),
            "integrality": np.ascontiguousarray(form.integrality),
        }
        if sf is not None:
            arrays["sf_a"] = np.ascontiguousarray(sf.a, dtype=float)
            arrays["sf_b"] = np.ascontiguousarray(sf.b, dtype=float)
            arrays["sf_lo"] = np.ascontiguousarray(sf.lo, dtype=float)
            arrays["sf_up"] = np.ascontiguousarray(sf.up, dtype=float)
            arrays["sf_cost"] = np.ascontiguousarray(sf.cost, dtype=float)
            if HAVE_SPARSE:
                csc = sf.a_csc()
                arrays["csc_data"] = np.ascontiguousarray(csc.data)
                arrays["csc_indices"] = np.ascontiguousarray(csc.indices)
                arrays["csc_indptr"] = np.ascontiguousarray(csc.indptr)

        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for key, value in arrays.items():
            offset = -(-offset // _ALIGN) * _ALIGN  # round up to alignment
            layout[key] = (offset, value.shape, value.dtype.str)
            offset += value.nbytes

        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(create=True, size=max(offset, 1))
        )
        for key, value in arrays.items():
            start = layout[key][0]
            dest = np.ndarray(
                value.shape, dtype=value.dtype,
                buffer=self._shm.buf, offset=start,
            )
            dest[...] = value

        #: Picklable layout descriptor shipped to workers over the control
        #: queue: segment name, per-array (offset, shape, dtype), scalars.
        self.spec: Dict[str, Any] = {
            "segment": self._shm.name,
            "layout": layout,
            "c0": float(form.c0),
            "has_sf": sf is not None,
            "sf_n": sf.n if sf is not None else 0,
            "sf_m": sf.m if sf is not None else 0,
        }
        _LIVE[self._shm.name] = self

    @property
    def name(self) -> str:
        """The segment name (stable until :meth:`close`)."""
        return self.spec["segment"]

    def close(self) -> None:
        """Close and unlink the segment; idempotent."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        _LIVE.pop(shm.name, None)
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "FormPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - backstop only
        self.close()


class AttachedForm:
    """Worker-side view of a published form.

    ``form`` and ``sf`` are rebuilt from the segment: two-dimensional
    matrices (and the CSC arrays) are read-only zero-copy views into
    shared memory; one-dimensional vectors are private copies because the
    LP backend mutates bounds (and sweeps mutate objectives) in place.
    Hold the instance as long as ``form``/``sf`` are in use — it keeps the
    mapping alive — and :meth:`close` it before attaching a newer epoch's
    segment.
    """

    def __init__(self, spec: Dict[str, Any]) -> None:
        self._shm = shared_memory.SharedMemory(name=spec["segment"])
        _untrack(self._shm)
        self.segment = spec["segment"]
        layout = spec["layout"]

        def view(key: str) -> np.ndarray:
            offset, shape, dtype = layout[key]
            out = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
            )
            out.flags.writeable = False
            return out

        self.form = MatrixForm(
            c=view("c").copy(),
            c0=spec["c0"],
            a_ub=view("a_ub"),
            b_ub=view("b_ub").copy(),
            a_eq=view("a_eq"),
            b_eq=view("b_eq").copy(),
            lb=view("lb").copy(),
            ub=view("ub").copy(),
            integrality=view("integrality").copy(),
            variables=(),
        )
        self.sf: Optional[StandardFormLP] = None
        if spec["has_sf"]:
            a_csc = None
            if "csc_data" in layout and HAVE_SPARSE:
                from scipy.sparse import csc_matrix

                a_csc = csc_matrix(
                    (view("csc_data"), view("csc_indices"), view("csc_indptr")),
                    shape=(spec["sf_m"], spec["sf_n"] + spec["sf_m"]),
                )
            self.sf = StandardFormLP.from_arrays(
                a=view("sf_a"),
                b=view("sf_b").copy(),
                lo=view("sf_lo").copy(),
                up=view("sf_up").copy(),
                cost=view("sf_cost").copy(),
                c0=spec["c0"],
                n=spec["sf_n"],
                m=spec["sf_m"],
                a_csc=a_csc,
            )

    def close(self) -> None:
        """Release this worker's mapping (never unlinks; the driver owns that)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        # Drop the numpy views first: closing a segment with exported
        # buffers raises on CPython.
        self.form = None  # type: ignore[assignment]
        self.sf = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views still alive elsewhere
            pass
