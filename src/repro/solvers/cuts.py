"""Root-node cutting planes: Gomory mixed-integer and knapsack cover cuts.

Cut-and-branch closes part of the integrality gap *before* the tree search
starts: the root LP is re-solved a bounded number of rounds, each round
appending violated valid inequalities to the standing
:class:`~repro.solvers.revised.StandardFormLP` and dual-reoptimizing from
the extended basis (see ``StandardFormLP.append_ub_rows`` /
``extend_basis``).  Two families are separated here:

* **Gomory mixed-integer (GMI) cuts** read the simplex tableau row of each
  fractional basic integer variable (one BTRAN per row via
  :class:`~repro.solvers.revised.TableauAccess`), derive the GMI
  inequality in the nonbasic shift space, and substitute the logical
  (slack) columns back out so the cut is expressed purely over structural
  variables — which is what lets the parallel drivers publish the
  cut-augmented form to shared memory unchanged.
* **Knapsack cover cuts** scan the ``<=`` rows of the (presolved) matrix
  form, complement negative-coefficient binaries, relax non-binary terms
  by their minimum contribution, and lift a greedy cover from the
  fractional LP point.

A :class:`CutPool` filters candidates by violation and pairwise
parallelism, ages the ones never selected, and enforces a per-round cap.
Everything is deterministic: candidate order, greedy selection, and
tie-breaks depend only on the LP data, never on wall clock or hashing.

Validity notes.  A GMI cut is only derived when every nonbasic column with
a nonzero tableau coefficient sits on a *finite* bound (free nonbasics
invalidate the shift substitution) and when integral structural columns
rest on integer bounds (presolve guarantees this).  Cuts never enter
:func:`_TreeSearch._is_feasible` — integral candidates are checked against
the original rows only, so an (astronomically unlikely) numerically wrong
cut could slow the search but a wrong *incumbent* can never be accepted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.milp.model import MatrixForm
from repro.solvers.revised import (
    AT_FREE,
    AT_UB,
    BASIC,
    Basis,
    StandardFormLP,
    TableauAccess,
)

#: Keep only fractional parts comfortably inside (0, 1): cuts from
#: near-integral basics are weak and tolerance-fragile.
MIN_FRACTIONALITY = 5e-3
#: Smallest violation (normalized by the cut's norm) worth adding.
MIN_VIOLATION = 1e-5
#: Cosine-similarity ceiling between two selected cuts in one round.
MAX_PARALLELISM = 0.95
#: Rounds a candidate may go unselected before the pool drops it.
MAX_AGE = 3
#: Largest |max coef| / |min nonzero coef| ratio accepted (numerical safety).
MAX_DYNAMISM = 1e7
#: Coefficients below this are snapped to zero before the dynamism check.
COEF_EPS = 1e-11


@dataclass
class Cut:
    """One ``coeffs @ x <= rhs`` inequality over the structural variables."""

    coeffs: np.ndarray
    rhs: float
    kind: str  # "gomory" | "cover"
    norm: float = 0.0
    age: int = 0
    #: Insertion index, the deterministic tie-break in pool ordering.
    serial: int = field(default=0, compare=False)

    def violation(self, x: np.ndarray) -> float:
        """Normalized violation of the cut at ``x`` (positive = violated)."""
        return (float(self.coeffs @ x) - self.rhs) / self.norm


def _finish_cut(coeffs: np.ndarray, rhs: float, kind: str) -> Optional[Cut]:
    """Clean, sanity-check, and wrap raw cut data; ``None`` if unusable."""
    coeffs = np.where(np.abs(coeffs) < COEF_EPS, 0.0, coeffs)
    nonzero = np.abs(coeffs[coeffs != 0.0])
    if nonzero.size == 0 or not math.isfinite(rhs):
        return None
    if float(nonzero.max()) / float(nonzero.min()) > MAX_DYNAMISM:
        return None
    norm = float(np.linalg.norm(coeffs))
    if not math.isfinite(norm) or norm < COEF_EPS:
        return None
    return Cut(coeffs, float(rhs), kind, norm=norm)


def separate_gomory(
    sf: StandardFormLP,
    basis: Basis,
    x: np.ndarray,
    integral: np.ndarray,
    max_cuts: int = 50,
) -> List[Cut]:
    """GMI cuts from the tableau rows of fractional basic integer variables.

    Args:
        sf: The (possibly already cut-augmented) standard form.
        basis: Optimal basis of the current root LP.
        x: Structural solution of that LP (length ``sf.n``).
        integral: Indices of integer-constrained structural variables.
        max_cuts: Scan stops after this many cuts were derived.
    """
    n = sf.n
    integral_mask = np.zeros(n, dtype=bool)
    integral_mask[integral] = True
    rows_wanted = [
        i for i in range(sf.m)
        if basis.basic[i] < n
        and integral_mask[basis.basic[i]]
        and MIN_FRACTIONALITY < (x[basis.basic[i]] % 1.0) < 1.0 - MIN_FRACTIONALITY
    ]
    if not rows_wanted:
        return []
    tableau = TableauAccess(sf, basis)
    if not tableau.ok:
        return []
    fixed = np.isfinite(sf.lo) & np.isfinite(sf.up) & (sf.up - sf.lo <= 1e-9)
    status = basis.status
    cuts: List[Cut] = []
    for i in rows_wanted:
        if len(cuts) >= max_cuts:
            break
        j_basic = int(basis.basic[i])
        f0 = float(x[j_basic] % 1.0)
        alpha = tableau.row(i)
        # Shifted-space coefficients a_j: +alpha at a lower bound, -alpha
        # at an upper bound; fixed columns contribute nothing; a free
        # nonbasic with real weight invalidates the derivation.
        nonbasic = (status != BASIC) & ~fixed
        active = nonbasic & (np.abs(alpha) > COEF_EPS)
        if np.any(active & (status == AT_FREE)):
            continue
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            continue
        at_ub = status[idx] == AT_UB
        a = np.where(at_ub, -alpha[idx], alpha[idx])
        is_int = (idx < n) & integral_mask[np.minimum(idx, n - 1)]
        # GMI coefficients in the shift space (t_j >= 0, cut >= f0 form).
        gamma = np.empty(idx.size)
        fj = a % 1.0
        with np.errstate(invalid="ignore"):
            gamma_int = np.where(fj <= f0, fj, f0 * (1.0 - fj) / (1.0 - f0))
            gamma_cont = np.where(a >= 0.0, a, f0 * (-a) / (1.0 - f0))
        gamma[is_int] = gamma_int[is_int]
        gamma[~is_int] = gamma_cont[~is_int]
        # Back to original columns: t_j = x_j - lo_j or up_j - x_j.
        pi = np.zeros(sf.ncols)
        pi[idx] = np.where(at_ub, -gamma, gamma)
        pi0 = f0 + float(
            np.sum(np.where(at_ub, -gamma * sf.up[idx], gamma * sf.lo[idx]))
        )
        if not math.isfinite(pi0):
            continue
        # Substitute logical columns out: row r says s_r = b_r - A[r,:n] x,
        # exact because the logical block is the identity.
        w = pi[:n].copy()
        w0 = pi0
        for r in np.nonzero(pi[n:])[0]:
            weight = pi[n + int(r)]
            w -= weight * sf.a[int(r), :n]
            w0 -= weight * sf.b[int(r)]
        # pi . x >= pi0 becomes the <= row -w . x <= -w0.
        cut = _finish_cut(-w, -w0, "gomory")
        if cut is not None:
            cuts.append(cut)
    return cuts


def separate_cover(
    form: MatrixForm, x: np.ndarray, max_cuts: int = 50
) -> List[Cut]:
    """Greedy knapsack cover cuts from the form's ``<=`` rows.

    Negative-coefficient binaries are complemented (``y = 1 - x``), other
    variables are relaxed away by their minimum contribution, and a cover
    is grown greedily in decreasing LP-value order until the capacity
    overflows.  The cover inequality is emitted only when the fractional
    point violates it.
    """
    if not form.a_ub.size:
        return []
    n = form.c.shape[0]
    binary = (
        np.asarray(form.integrality, dtype=bool)
        & (form.lb >= -1e-9) & (form.lb <= 1e-9)
        & (form.ub >= 1.0 - 1e-9) & (form.ub <= 1.0 + 1e-9)
    )
    cuts: List[Cut] = []
    for r in range(form.a_ub.shape[0]):
        if len(cuts) >= max_cuts:
            break
        row = form.a_ub[r]
        rhs = float(form.b_ub[r])
        cand = np.nonzero((np.abs(row) > COEF_EPS) & binary)[0]
        if cand.size < 2:
            continue
        rest = np.nonzero((np.abs(row) > COEF_EPS) & ~binary)[0]
        # Relax non-binary terms by their smallest possible contribution.
        ok = True
        for j in rest:
            low = min(row[j] * form.lb[j], row[j] * form.ub[j])
            if not math.isfinite(low):
                ok = False
                break
            rhs -= low
        if not ok:
            continue
        # Complement negatives so every knapsack weight is positive.
        flip = row[cand] < 0.0
        weights = np.abs(row[cand])
        rhs_k = rhs - float(np.sum(row[cand][flip]))
        if rhs_k <= COEF_EPS or float(np.sum(weights)) <= rhs_k + 1e-9:
            continue  # empty or never-binding knapsack: no cover exists
        y = np.where(flip, 1.0 - x[cand], x[cand])
        # Greedy cover: most-set items first (ties to the lowest index).
        order = sorted(range(cand.size), key=lambda k: (-y[k], cand[k]))
        total = 0.0
        cover: List[int] = []
        for k in order:
            cover.append(k)
            total += float(weights[k])
            if total > rhs_k + 1e-9:
                break
        else:
            continue  # never overflowed: not a cover
        slack_sum = float(np.sum(1.0 - y[cover]))
        if slack_sum >= 1.0 - 1e-6:
            continue  # cover inequality not violated at the LP point
        coeffs = np.zeros(n)
        rhs_c = float(len(cover) - 1)
        for k in cover:
            j = int(cand[k])
            if flip[k]:
                coeffs[j] = -1.0
                rhs_c -= 1.0
            else:
                coeffs[j] = 1.0
        cut = _finish_cut(coeffs, rhs_c, "cover")
        if cut is not None:
            cuts.append(cut)
    return cuts


class CutPool:
    """Candidate store with violation/parallelism filtering and aging."""

    def __init__(
        self,
        max_per_round: int = 20,
        min_violation: float = MIN_VIOLATION,
        max_parallelism: float = MAX_PARALLELISM,
        max_age: int = MAX_AGE,
    ) -> None:
        self.max_per_round = max_per_round
        self.min_violation = min_violation
        self.max_parallelism = max_parallelism
        self.max_age = max_age
        self.candidates: List[Cut] = []
        self._serial = 0
        self._seen = set()

    def add(self, cuts: List[Cut]) -> int:
        """Deduplicate and admit candidates; returns how many were new."""
        added = 0
        for cut in cuts:
            key = (
                cut.kind,
                round(cut.rhs / cut.norm, 9),
                tuple(np.round(cut.coeffs / cut.norm, 9)),
            )
            if key in self._seen:
                continue
            self._seen.add(key)
            cut.serial = self._serial
            self._serial += 1
            self.candidates.append(cut)
            added += 1
        return added

    def select(self, x: np.ndarray) -> List[Cut]:
        """Pick this round's cuts: most-violated first, near-parallel skipped.

        Selected cuts leave the pool (they join the LP for good); the
        rest age by one round and fall out past :attr:`max_age`.
        """
        scored = [
            (cut.violation(x), cut) for cut in self.candidates
        ]
        ranked = sorted(
            (pair for pair in scored if pair[0] > self.min_violation),
            key=lambda pair: (-pair[0], pair[1].serial),
        )
        chosen: List[Cut] = []
        for _, cut in ranked:
            if len(chosen) >= self.max_per_round:
                break
            unit = cut.coeffs / cut.norm
            if any(
                abs(float(unit @ other.coeffs) / other.norm) > self.max_parallelism
                for other in chosen
            ):
                continue
            chosen.append(cut)
        taken = {id(cut) for cut in chosen}
        survivors = []
        for cut in self.candidates:
            if id(cut) in taken:
                continue
            cut.age += 1
            if cut.age <= self.max_age:
                survivors.append(cut)
        self.candidates = survivors
        return chosen

    def as_rows(self, cuts: List[Cut]) -> Tuple[np.ndarray, np.ndarray]:
        """Stack selected cuts into ``(rows, rhs)`` for ``append_ub_rows``."""
        rows = np.vstack([cut.coeffs for cut in cuts])
        rhs = np.array([cut.rhs for cut in cuts])
        return rows, rhs
