"""*Bozo* — a from-scratch branch-and-bound MILP solver.

The paper solved its MILP models with Bozo, L. J. Hafer's branch-and-bound
code layered on the commercial XLP simplex.  This module is the
reproduction's equivalent: LP-relaxation branch and bound layered on an
incremental LP pipeline.  The standard form is built **once** at the root
(:class:`~repro.solvers.revised.StandardFormLP`); each node mutates only
the branched variable bound in place and warm-starts the revised simplex
from its parent's optimal basis, falling back to the dense two-phase
tableau (:mod:`repro.solvers.simplex`) whenever the incremental path
signals trouble.

Features (all selectable through :class:`~repro.solvers.base.SolverOptions`):

* best-first (default) or depth-first node selection,
* most-fractional or pseudocost branching (pseudocosts learn from the
  *observed* parent-to-child LP objective degradation),
* warm-started LP relaxations (``warm_start=False`` restores the original
  cold dense solve per node),
* incumbent rounding/repair for near-integral LP solutions,
* wall-clock and node limits with a FEASIBLE (incumbent, gap > 0) result,
* parallel tree search (``workers=N``): a serial ramp opens a frontier of
  subtrees that are dispatched to a persistent shared-memory worker pool
  with a shared incumbent bound (:mod:`repro.solvers.parallel`), either
  merged deterministically (``deterministic=True``, byte-identical to
  serial) or explored with work stealing (``deterministic=False``,
  identical objectives, unordered exploration),
* an optional objective ``cutoff`` for sweep-style callers that already
  know a valid upper bound,
* full :class:`~repro.milp.solution.SolveStats` telemetry on every result.

Determinism: nodes are ordered by ``(parent LP bound, path id)`` where the
path id encodes the branching path from the root (root ``1``, down child
``2 i``, up child ``2 i + 1``).  Unlike the previous insertion-order
counter, path ids are independent of how much of the tree was pruned
before a node was created, so serial reruns — and any partition of the
tree across workers — explore ties in the same order and return the same
incumbent.
"""

from __future__ import annotations

import heapq
import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import CancelledError
from repro.milp.model import MatrixForm, Model
from repro.milp.solution import Solution, SolveStats, SolveStatus, root_gap_closed
from repro.obs.progress import ProgressReporter
from repro.obs.sinks import Tracer, make_tracer
from repro.solvers.base import Solver, SolverOptions
from repro.solvers.cuts import CutPool, separate_cover, separate_gomory
from repro.solvers.revised import (
    Basis,
    RevisedStatus,
    StandardFormLP,
    extend_basis,
    solve_revised,
    solve_with_fallback,
)
from repro.solvers.simplex import LPResult, LPStatus, solve_lp

#: Dual-simplex pivot budget of one strong-branching probe.  Probes that
#: exhaust it are simply not recorded — a budgeted probe must never be
#: allowed to trigger the expensive dense fallback.
STRONG_BRANCH_ITERATIONS = 150

#: Relative root-gap closure below which a separation round counts as
#: stalled.  Once any round clears this threshold, a later sub-threshold
#: round ends the cut loop early (``reason="tailing_off"`` on its
#: ``cut_round`` event) instead of paying for more rows in every node LP.
CUT_STALL_EPS = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by ``(parent LP bound, path id)``.

    ``tiebreak`` is the node's path id: ``1`` at the root, ``2 i`` for the
    down child of node ``i`` and ``2 i + 1`` for the up child.  Equal ids
    name equal subtrees, regardless of exploration or pruning history.

    Nodes never cross a process boundary whole: the parallel pool ships
    them as explicit bound *deltas* against the root bounds (see
    :func:`repro.solvers.pool.encode_node`), so a work unit costs
    O(branched bounds + basis), never a constraint-matrix copy.
    """

    bound: float
    tiebreak: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)
    #: Parent's optimal basis, the warm start for this node's LP.
    basis: Optional[Basis] = field(compare=False, default=None)
    #: Variable branched on to create this node (-1 at the root).
    branch_var: int = field(compare=False, default=-1)
    #: ``"down"`` or ``"up"`` branch direction.
    branch_dir: str = field(compare=False, default="")
    #: Fractional distance the branch must close (f down, 1-f up).
    branch_fraction: float = field(compare=False, default=0.0)


class _Pseudocosts:
    """Per-variable average objective degradation used for branching."""

    def __init__(self, n: int) -> None:
        self.up_sum = np.zeros(n)
        self.up_count = np.zeros(n)
        self.down_sum = np.zeros(n)
        self.down_count = np.zeros(n)

    def record(self, j: int, direction: str, degradation: float, fraction: float) -> None:
        per_unit = degradation / max(fraction, 1e-9)
        if direction == "up":
            self.up_sum[j] += per_unit
            self.up_count[j] += 1
        else:
            self.down_sum[j] += per_unit
            self.down_count[j] += 1

    def observe_child(self, node: _Node, child_objective: float) -> None:
        """Learn from a solved child: the true parent-to-child degradation."""
        if node.branch_var < 0:
            return
        degradation = max(child_objective - node.bound, 0.0)
        self.record(node.branch_var, node.branch_dir, degradation, node.branch_fraction)

    def score(self, j: int, fraction: float) -> float:
        up = self.up_sum[j] / self.up_count[j] if self.up_count[j] else 1.0
        down = self.down_sum[j] / self.down_count[j] if self.down_count[j] else 1.0
        # Classic product rule, guarded away from zero.
        return max(up * (1.0 - fraction), 1e-6) * max(down * fraction, 1e-6)


class _LPBackend:
    """Per-MILP LP engine: one standard form, bound mutation, warm starts.

    One instance lives for the duration of a solve (or of one subtree in a
    parallel solve).  It owns the :class:`StandardFormLP` built from the
    (presolved) matrix form and funnels every relaxation — root, dive
    steps, tree nodes — through :meth:`solve`, accumulating telemetry in a
    shared :class:`SolveStats`.  Workers of a parallel solve pass the
    fork-inherited standard form via ``sf`` instead of rebuilding it.
    """

    def __init__(
        self,
        form: MatrixForm,
        warm_start: bool,
        stats: SolveStats,
        sf: Optional[StandardFormLP] = None,
        tracer: Optional[Tracer] = None,
        pricing_block_size: int = 0,
        pricing: str = "devex",
    ) -> None:
        self.form = form
        self.stats = stats
        self.tracer = tracer
        self.pricing_block_size = pricing_block_size
        self.pricing = pricing
        if sf is not None:
            self.sf: Optional[StandardFormLP] = sf
        else:
            self.sf = StandardFormLP.from_matrix_form(form) if warm_start else None

    def _absorb_counters(self, counters) -> None:
        """Fold one solve's kernel counters into the run's SolveStats."""
        if counters is None:
            return
        stats = self.stats
        stats.bound_flips += counters.bound_flips
        stats.devex_resets += counters.devex_resets
        stats.ftran_sparsity += counters.ftran_sparsity
        stats.refactorizations += counters.refactorizations

    def _trace_lp(
        self, result: LPResult, warm: bool, fallback: bool, seconds: float
    ) -> None:
        """Emit the ``lp_solved`` event for one finished relaxation."""
        if self.tracer is None:
            return
        extra = result.counters.as_dict() if result.counters is not None else {}
        self.tracer.emit(
            "lp_solved",
            pivots=result.iterations,
            status=result.status.value,
            warm=warm,
            fallback=fallback,
            seconds=seconds,
            **extra,
        )

    def solve(
        self,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: Optional[Basis] = None,
        want_reduced_costs: bool = False,
    ) -> Tuple[LPResult, Optional[Basis]]:
        """Solve the relaxation under ``lb``/``ub``; returns (result, basis)."""
        start = time.monotonic()
        self.stats.lp_solves += 1
        form = self.form
        if self.sf is None:
            result = solve_lp(
                form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
                lb, ub, c0=form.c0,
            )
            self.stats.lp_pivots += result.iterations
            self._absorb_counters(result.counters)
            elapsed = time.monotonic() - start
            self.stats.add_phase("lp", elapsed)
            self._trace_lp(result, warm=False, fallback=False, seconds=elapsed)
            return result, None
        self.sf.set_bounds(lb, ub)
        if basis is not None:
            self.stats.warm_starts += 1
        result, final_basis, fell_back = solve_with_fallback(
            self.sf,
            basis,
            pricing_block_size=self.pricing_block_size,
            want_reduced_costs=want_reduced_costs,
            pricing=self.pricing,
        )
        self.stats.lp_pivots += result.iterations
        self._absorb_counters(result.counters)
        if fell_back:
            self.stats.fallbacks += 1
        elif basis is not None:
            self.stats.warm_start_hits += 1
        elapsed = time.monotonic() - start
        self.stats.add_phase("lp", elapsed)
        self._trace_lp(
            result, warm=basis is not None, fallback=fell_back, seconds=elapsed
        )
        return result, final_basis

    def probe(
        self,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: Optional[Basis],
        max_iterations: int = STRONG_BRANCH_ITERATIONS,
    ) -> Tuple[RevisedStatus, float]:
        """Budgeted strong-branching probe on the revised path only.

        Unlike :meth:`solve`, a probe never falls back to the dense
        oracle: blowing the pivot budget (or any numerical trouble)
        returns ``NEEDS_FALLBACK`` and the caller simply learns nothing
        from that direction.  Probes emit ordinary ``lp_solved`` events
        and accumulate into the same counters, so trace replay stays
        exact for free.
        """
        start = time.monotonic()
        self.stats.lp_solves += 1
        assert self.sf is not None
        self.sf.set_bounds(lb, ub)
        if basis is not None:
            self.stats.warm_starts += 1
            # A probe can't fall back, so every warm attempt is a "hit" in
            # the sense the replay derives from the event stream.
            self.stats.warm_start_hits += 1
        revised = solve_revised(
            self.sf, basis, max_iterations=max_iterations,
            pricing_block_size=self.pricing_block_size,
            pricing=self.pricing,
        )
        self.stats.lp_pivots += revised.iterations
        self._absorb_counters(revised.counters)
        elapsed = time.monotonic() - start
        self.stats.add_phase("lp", elapsed)
        if self.tracer is not None:
            extra = revised.counters.as_dict() if revised.counters is not None else {}
            self.tracer.emit(
                "lp_solved",
                pivots=revised.iterations,
                status=revised.status.value,
                warm=basis is not None,
                fallback=False,
                seconds=elapsed,
                **extra,
            )
        return revised.status, revised.objective


@dataclass
class _SearchOutcome:
    """What one tree (or subtree) search produced.

    ``incumbent_key`` is the ``(bound, path id)`` of the node being
    processed when the final incumbent was adopted — the node's position
    in the deterministic global exploration order.  Parallel merges use it
    to pick, among equal-objective incumbents from different subtrees, the
    one the serial search would have found first.
    """

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj: float = math.inf
    incumbent_key: Optional[Tuple[float, int]] = None
    nodes: int = 0
    hit_limit: bool = False
    root_unbounded: bool = False
    best_open_bound: float = -math.inf
    open_nodes: List[_Node] = field(default_factory=list)


class _TreeSearch:
    """One branch-and-bound tree walk over a fixed LP backend.

    The same engine drives three regimes:

    * the plain serial solve (``run`` from the root until exhaustion),
    * the parallel *ramp* (``frontier_target`` set: stop once the open
      list holds that many subtree roots and return them), and
    * a parallel *subtree* worker (seeded ``incumbent_obj``, a
      ``foreign_best`` callable for conservative cross-worker pruning, a
      ``publish`` callback broadcasting improvements, dives disabled).

    Cross-worker pruning is deliberately conservative (strictly worse than
    the foreign bound, no adoption): it can only discard nodes whose whole
    subtree is provably worse than the global optimum, so each subtree's
    reported incumbent is independent of broadcast timing — the property
    the deterministic merge in :mod:`repro.solvers.parallel` relies on.
    """

    def __init__(
        self,
        options: SolverOptions,
        form: MatrixForm,
        lp: _LPBackend,
        *,
        start: float,
        incumbent_obj: float = math.inf,
        foreign_best=None,
        publish=None,
        allow_dives: bool = True,
        allow_cuts: bool = True,
        treat_root_unbounded: bool = True,
        node_budget: int = 0,
        tracer: Optional[Tracer] = None,
        reporter: Optional[ProgressReporter] = None,
        root_lp: Optional[Tuple[float, np.ndarray, np.ndarray]] = None,
        fixed_bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        spill=None,
    ) -> None:
        self.options = options
        self.form = form
        self.lp = lp
        self.start = start
        self.tracer = tracer
        self.reporter = reporter
        self.integral = np.where(form.integrality)[0]
        self.pseudo = _Pseudocosts(form.c.shape[0])
        self.incumbent_x: Optional[np.ndarray] = None
        self.incumbent_obj = incumbent_obj
        self.incumbent_key: Optional[Tuple[float, int]] = None
        self.foreign_best = foreign_best
        self.publish = publish
        self.allow_dives = allow_dives
        # Cuts are a *root* mechanism: the serial solve and the parallel
        # ramp separate them (tiebreak == 1), subtree workers never do —
        # they inherit the cut-augmented form through shared memory.
        self.allow_cuts = allow_cuts
        #: ``(coefficients, rhs)`` of every cut row appended to the
        #: standard form, in application order — the cut-augmented root
        #: relaxation is the original rows plus exactly these.
        self.applied_cuts: List[Tuple[np.ndarray, float]] = []
        self.treat_root_unbounded = treat_root_unbounded
        # Fast-parallel-mode hook: called with the open heap every few
        # nodes so a busy worker can donate open subtrees to idle peers.
        # The callback owns the policy (when and how much); it mutates the
        # heap in place and must leave it a valid heap.
        self.spill = spill
        self._last_spill_at = 0
        self.node_budget = node_budget if node_budget else options.node_limit
        self.nodes_processed = 0
        # Reduced-cost fixing state.  ``root_lp`` ships a ramp's root LP
        # (objective, x*, reduced costs) to parallel subtree workers so they
        # can keep re-tightening from their own incumbents; ``fixed_bounds``
        # ships the bounds already derived at dispatch time.
        self.rc_enabled = options.rc_fixing == "root"
        if root_lp is not None:
            self.root_obj, self.root_x, self.root_rc = root_lp
        else:
            self.root_obj = math.inf
            self.root_x: Optional[np.ndarray] = None
            self.root_rc: Optional[np.ndarray] = None
        if fixed_bounds is not None:
            self.fix_lb: Optional[np.ndarray] = fixed_bounds[0]
            self.fix_ub: Optional[np.ndarray] = fixed_bounds[1]
        else:
            self.fix_lb = None
            self.fix_ub = None

    # -- driver -------------------------------------------------------------
    def run(
        self, roots: List[_Node], frontier_target: int = 0
    ) -> _SearchOutcome:
        """Search from ``roots``; stop at exhaustion, a limit, or a frontier.

        With ``frontier_target > 0`` (best-first only) the walk stops as
        soon as the open list holds at least that many nodes and returns
        them in ``open_nodes`` for a caller to dispatch as subtrees.
        """
        options = self.options
        depth_first = options.node_selection == "depth_first"
        heap: List[_Node] = []
        stack: List[_Node] = []
        if depth_first:
            stack = list(roots)
        else:
            heap = list(roots)
            heapq.heapify(heap)

        def pop_node() -> Optional[_Node]:
            if depth_first:
                return stack.pop() if stack else None
            return heapq.heappop(heap) if heap else None

        def push_node(node: _Node) -> None:
            if depth_first:
                stack.append(node)
            else:
                heapq.heappush(heap, node)

        out = _SearchOutcome()
        tol = options.integrality_tolerance
        form = self.form
        cutoff = options.cutoff
        should_stop = options.should_stop
        while True:
            if should_stop is not None and should_stop():
                raise CancelledError(
                    f"solve cancelled after {self.nodes_processed} nodes"
                )
            if (
                frontier_target
                and not depth_first
                and self.nodes_processed >= 1
                and len(heap) >= frontier_target
            ):
                out.open_nodes = heap
                break
            if (
                self.spill is not None
                and not depth_first
                and len(heap) >= 4
                and self.nodes_processed % 16 == 0
                and self.nodes_processed != self._last_spill_at
            ):
                self._last_spill_at = self.nodes_processed
                self.spill(heap)
            node = pop_node()
            if node is None:
                break
            if node.bound >= self.incumbent_obj - options.gap_tolerance * max(
                1.0, abs(self.incumbent_obj)
            ):
                continue  # pruned by own incumbent
            if cutoff is not None and node.bound > cutoff + 1e-9 * max(1.0, abs(cutoff)):
                continue  # pruned by the caller-supplied valid upper bound
            if self.foreign_best is not None:
                foreign = self.foreign_best()
                if node.bound > foreign + 1e-9 * max(1.0, abs(foreign)):
                    continue  # conservatively pruned by a broadcast incumbent
            if self.fix_ub is not None and (
                np.any(node.lb > self.fix_ub + 1e-9)
                or np.any(node.ub < self.fix_lb - 1e-9)
            ):
                continue  # branch box excluded by reduced-cost fixing
            if time.monotonic() - self.start > options.time_limit or (
                self.node_budget and self.nodes_processed >= self.node_budget
            ):
                out.hit_limit = True
                out.best_open_bound = min(
                    node.bound, *(other.bound for other in (heap or stack))
                ) if (heap or stack) else node.bound
                break

            if self.tracer is not None:
                self.tracer.emit(
                    "node_opened",
                    node=node.tiebreak,
                    bound=node.bound,
                    depth=node.depth,
                )
            want_rc = (
                self.rc_enabled and node.tiebreak == 1 and self.root_rc is None
            )
            result, node_basis = self.lp.solve(
                node.lb, node.ub, node.basis, want_reduced_costs=want_rc
            )
            self.nodes_processed += 1
            if self.reporter is not None:
                self.reporter.report(
                    nodes=self.nodes_processed,
                    incumbent=self.incumbent_obj,
                    bound=node.bound,
                )
            key = (node.bound, node.tiebreak)
            if result.status is LPStatus.INFEASIBLE:
                continue
            if result.status is LPStatus.UNBOUNDED:
                if self.nodes_processed == 1 and self.treat_root_unbounded:
                    out.root_unbounded = True
                    break
                continue
            if result.status is LPStatus.ITERATION_LIMIT:
                # Treat as unexplored; keep the parent bound so the gap stays valid.
                continue

            assert result.x is not None
            lp_obj = result.objective
            if (
                node.tiebreak == 1
                and self.allow_cuts
                and options.cuts == "auto"
                and self.lp.sf is not None
            ):
                result, node_basis = self._root_cut_loop(
                    node, result, node_basis, want_rc
                )
                if result.status is not LPStatus.OPTIMAL or result.x is None:
                    # A post-cut root LP can only fail numerically (every
                    # integer point satisfies every cut); treat it like an
                    # infeasible/unexplored root and let the terminal
                    # status logic answer from whatever incumbent exists.
                    continue
                lp_obj = result.objective
            if (
                node.tiebreak == 1
                and self.root_rc is None
                and result.reduced_costs is not None
            ):
                # Capture the root LP for reduced-cost fixing; if a seeded
                # incumbent is already in place, derive bounds immediately.
                self.root_obj = lp_obj
                self.root_x = result.x.copy()
                self.root_rc = result.reduced_costs
                if self.incumbent_x is not None:
                    self._tighten_from_root(node.tiebreak)
            self.pseudo.observe_child(node, lp_obj)
            if self.allow_dives and (
                (self.nodes_processed == 1 and self.incumbent_x is None)
                or (self.incumbent_x is None and self.nodes_processed % 16 == 0)
            ):
                # Rounding dive for a quick incumbent: always at the root,
                # then periodically for as long as the tree has none —
                # best-first search cannot prune anything without one.
                dived = self._dive(node.lb, node.ub, result.x, node_basis)
                if dived is not None:
                    objective = float(form.c @ dived) + form.c0
                    if objective < self.incumbent_obj - 1e-12:
                        self._adopt(dived, objective, key, source="dive")
            if lp_obj >= self.incumbent_obj - options.gap_tolerance * max(
                1.0, abs(self.incumbent_obj)
            ):
                continue
            if cutoff is not None and lp_obj > cutoff + 1e-9 * max(1.0, abs(cutoff)):
                continue

            xi = result.x[self.integral]
            dist = np.minimum(xi - np.floor(xi), np.ceil(xi) - xi)
            frac_mask = dist > tol
            fractional = list(zip(
                self.integral[frac_mask].tolist(),
                (xi[frac_mask] - np.floor(xi[frac_mask] + tol)).tolist(),
            ))
            if not fractional:
                x = result.x.copy()
                x[self.integral] = np.round(x[self.integral])
                if self._is_feasible(form, x):
                    obj = float(form.c @ x) + form.c0
                    if obj < self.incumbent_obj - 1e-12:
                        self._adopt(x, obj, key, source="integral")
                continue

            if (
                node.tiebreak == 1
                and options.branching == "pseudocost"
                and options.strong_branching > 0
                and self.lp.sf is not None
                and node_basis is not None
                and len(fractional) > 1
            ):
                # Root-only, candidate-limited strong branching: initialize
                # the (otherwise cold) pseudocosts with observed objective
                # degradations so _pick_branch's first decision is informed.
                candidates, probes = self._strong_branch_root(
                    node, lp_obj, result.x, fractional, node_basis
                )
                branch_j, fraction = self._pick_branch(fractional)
                if self.tracer is not None:
                    self.tracer.emit(
                        "strong_branch",
                        node=node.tiebreak,
                        candidates=candidates,
                        probes=probes,
                        chosen=int(branch_j),
                    )
            else:
                branch_j, fraction = self._pick_branch(fractional)
            value = result.x[branch_j]
            floor_value = math.floor(value + tol)

            down = _Node(
                lp_obj, 2 * node.tiebreak, node.lb.copy(), node.ub.copy(),
                node.depth + 1, basis=node_basis,
                branch_var=branch_j, branch_dir="down", branch_fraction=fraction,
            )
            down.ub[branch_j] = float(floor_value)
            up = _Node(
                lp_obj, 2 * node.tiebreak + 1, node.lb.copy(), node.ub.copy(),
                node.depth + 1, basis=node_basis,
                branch_var=branch_j, branch_dir="up", branch_fraction=1.0 - fraction,
            )
            up.lb[branch_j] = float(floor_value + 1)
            # Depth-first explores the "more integral" child first for quick
            # incumbents: push the closer-to-value branch last (popped first).
            # Best-first ignores push order — the heap key decides.
            if value - floor_value > 0.5:
                push_node(down)
                push_node(up)
            else:
                push_node(up)
                push_node(down)

        out.incumbent_x = self.incumbent_x
        out.incumbent_obj = self.incumbent_obj
        out.incumbent_key = self.incumbent_key
        out.nodes = self.nodes_processed
        return out

    def _adopt(
        self,
        x: np.ndarray,
        objective: float,
        key: Tuple[float, int],
        source: str = "integral",
    ) -> None:
        self.incumbent_x = x
        self.incumbent_obj = objective
        self.incumbent_key = key
        if self.tracer is not None:
            self.tracer.emit(
                "incumbent_found", objective=objective, node=key[1], source=source
            )
        if self.publish is not None:
            self.publish(objective)
        if self.root_rc is not None:
            self._tighten_from_root(key[1])

    def seed_incumbent(self, values: Mapping[str, float]) -> bool:
        """Validate and adopt a caller-supplied incumbent before the root.

        ``values`` must cover *every* variable of the (presolved) form by
        name, be integral where required (up to the integrality tolerance,
        which is snapped away), and satisfy every constraint.  Anything
        short of that rejects the seed — a bad seed must never be able to
        change the optimum, only the amount of tree explored.
        """
        form = self.form
        x = np.empty(form.c.shape[0])
        for j, var in enumerate(form.variables):
            value = values.get(var.name)
            if value is None:
                return False
            x[j] = float(value)
        rounded = np.round(x[self.integral])
        if np.any(
            np.abs(x[self.integral] - rounded) > self.options.integrality_tolerance
        ):
            return False
        x[self.integral] = rounded
        if not self._is_feasible(form, x):
            return False
        objective = float(form.c @ x) + form.c0
        if objective >= self.incumbent_obj - 1e-12:
            return False
        self._adopt(x, objective, (-math.inf, 0), source="seed")
        self.lp.stats.seeded_incumbent = 1
        return True

    def _tighten_from_root(self, node_id: int) -> None:
        """Derive tree-wide integral bounds from the root LP's reduced costs.

        Standard reduced-cost fixing: a variable nonbasic at its root bound
        with reduced cost ``d`` degrades the root objective by ``|d|`` per
        unit it moves inward, so it can move at most ``slack / |d|`` before
        the node is no better than the incumbent threshold.  The derived
        bounds are *never* intersected into node LPs — they only prune
        nodes whose branch box violates them (see ``run``), which is the
        same conservative-provability class as incumbent pruning and keeps
        the serial/parallel solution identity intact.  Bounds only ever
        tighten monotonically; called again after every improved incumbent.
        """
        if self.root_rc is None or not math.isfinite(self.incumbent_obj):
            return
        options = self.options
        threshold = self.incumbent_obj - options.gap_tolerance * max(
            1.0, abs(self.incumbent_obj)
        )
        slack = threshold - self.root_obj
        if not math.isfinite(slack) or slack < 0.0:
            return
        tol = options.integrality_tolerance
        rc, x0 = self.root_rc, self.root_x
        lb0, ub0 = self.form.lb, self.form.ub
        if self.fix_lb is None:
            self.fix_lb = np.array(lb0, dtype=float, copy=True)
            self.fix_ub = np.array(ub0, dtype=float, copy=True)
        count = 0
        for j in self.integral:
            d = float(rc[j])
            if d > 1e-9 and x0[j] <= lb0[j] + tol:
                new_ub = float(math.floor(x0[j] + slack / d + tol))
                if new_ub < self.fix_ub[j] - 0.5:
                    self.fix_ub[j] = new_ub
                    count += 1
            elif d < -1e-9 and x0[j] >= ub0[j] - tol:
                new_lb = float(math.ceil(x0[j] + slack / d - tol))
                if new_lb > self.fix_lb[j] + 0.5:
                    self.fix_lb[j] = new_lb
                    count += 1
        if count:
            self.lp.stats.rc_fixed_bounds += count
            if self.tracer is not None:
                self.tracer.emit("bounds_fixed", node=node_id, count=count)

    # -- root cut-and-branch ------------------------------------------------
    def _root_cut_loop(
        self,
        node: _Node,
        result: LPResult,
        node_basis: Optional[Basis],
        want_rc: bool,
    ) -> Tuple[LPResult, Optional[Basis]]:
        """Bounded root separation: Gomory + cover cuts, re-solve per round.

        Each round separates violated cuts at the current root optimum,
        appends a pool-filtered batch to the standing standard form, and
        dual-reoptimizes from the extended basis (the appended slacks stay
        dual feasible, so re-solves are a short warm repair, not a
        rebuild).  The augmented form is inherited by every tree node —
        and, in a parallel solve, shipped to the workers via shared
        memory.  Deterministic end to end: same model, same cuts.

        Separation stops early when it *tails off*: once some round has
        closed at least :data:`CUT_STALL_EPS` of relative root gap, a
        later round closing less than that abandons the loop (reason
        ``"tailing_off"`` on its ``cut_round`` event) — the remaining
        rounds would buy bound noise at the price of extra rows in every
        tree-node LP.  Instances whose rounds never move the root bound
        at all (degenerate 0/1 models like market split, where Gomory
        rows still prune by cutting fractional vertices off the tree's
        LPs) are a different regime: there the bounded ``cut_rounds``
        budget is the cost cap, and the loop runs it in full.
        """
        options = self.options
        sf = self.lp.sf
        assert sf is not None
        tol = options.integrality_tolerance
        pool = CutPool()
        first_bound = 0.0
        last_bound = 0.0
        rounds_run = 0
        total_added = 0
        total_gomory = 0
        total_cover = 0
        progressed = False  # some round closed >= CUT_STALL_EPS of gap
        for round_index in range(1, max(options.cut_rounds, 0) + 1):
            x = result.x
            if result.status is not LPStatus.OPTIMAL or x is None:
                break
            if not any(
                min(x[j] - math.floor(x[j]), math.ceil(x[j]) - x[j]) > tol
                for j in self.integral
            ):
                break  # integral: the tree search will finish at this node
            threshold = self.incumbent_obj - options.gap_tolerance * max(
                1.0, abs(self.incumbent_obj)
            )
            if result.objective >= threshold:
                break  # root already pruned by the incumbent: cuts are moot
            gomory = (
                separate_gomory(sf, node_basis, x, self.integral)
                if node_basis is not None
                else []
            )
            cover = separate_cover(self.form, x)
            pool.add(gomory + cover)
            chosen = pool.select(x)
            if not chosen:
                break
            bound_before = result.objective
            rows, rhs = pool.as_rows(chosen)
            self.applied_cuts.extend(
                (rows[k].copy(), float(rhs[k])) for k in range(len(chosen))
            )
            sf.append_ub_rows(rows, rhs)
            if node_basis is not None:
                node_basis = extend_basis(node_basis, sf, len(chosen))
            result, node_basis = self.lp.solve(
                node.lb, node.ub, node_basis, want_reduced_costs=want_rc
            )
            rounds_run += 1
            total_added += len(chosen)
            total_gomory += sum(1 for cut in chosen if cut.kind == "gomory")
            total_cover += sum(1 for cut in chosen if cut.kind == "cover")
            improved = (
                result.status is LPStatus.OPTIMAL
                and math.isfinite(result.objective)
            )
            bound_after = result.objective if improved else bound_before
            if rounds_run == 1:
                first_bound = bound_before
            last_bound = bound_after
            round_closed = root_gap_closed(bound_before, bound_after)
            tailing_off = progressed and round_closed < CUT_STALL_EPS
            if round_closed >= CUT_STALL_EPS:
                progressed = True
            if self.tracer is not None:
                extra = {"reason": "tailing_off"} if tailing_off else {}
                self.tracer.emit(
                    "cut_round",
                    round=round_index,
                    generated=len(gomory) + len(cover),
                    added=len(chosen),
                    bound_before=bound_before,
                    bound_after=bound_after,
                    **extra,
                )
            if tailing_off:
                break
        if rounds_run:
            stats = self.lp.stats
            stats.cuts_added += total_added
            stats.cut_rounds += rounds_run
            stats.root_gap_closed += root_gap_closed(first_bound, last_bound)
            if self.tracer is not None:
                self.tracer.emit(
                    "cuts_added",
                    count=total_added,
                    rounds=rounds_run,
                    gomory=total_gomory,
                    cover=total_cover,
                )
        return result, node_basis

    def _strong_branch_root(
        self,
        node: _Node,
        lp_obj: float,
        x: np.ndarray,
        fractional: List[Tuple[int, float]],
        basis: Basis,
    ) -> Tuple[int, int]:
        """Probe the most-fractional candidates to initialize pseudocosts.

        For each candidate both branch directions are solved with a short
        dual-simplex budget from the root basis; the observed objective
        degradations are recorded exactly as a solved child would record
        them, so :meth:`_Pseudocosts.score`'s product rule sees real data
        instead of the cold 1.0 defaults.  An infeasible direction records
        a huge degradation — branching there closes the subtree outright.
        Returns ``(candidates probed, LP probes run)``.
        """
        options = self.options
        tol = options.integrality_tolerance
        limit = min(options.strong_branching, len(fractional))
        candidates = sorted(
            fractional, key=lambda item: (-min(item[1], 1.0 - item[1]), item[0])
        )[:limit]
        probes = 0
        infeasible_degradation = 1e6 * (1.0 + abs(lp_obj))
        for j, fraction in candidates:
            floor_value = math.floor(x[j] + tol)
            for direction, frac_dir in (("down", fraction), ("up", 1.0 - fraction)):
                lb = node.lb.copy()
                ub = node.ub.copy()
                if direction == "down":
                    ub[j] = float(floor_value)
                else:
                    lb[j] = float(floor_value + 1)
                status, objective = self.lp.probe(lb, ub, basis)
                probes += 1
                if status is RevisedStatus.OPTIMAL:
                    self.pseudo.record(
                        j, direction, max(objective - lp_obj, 0.0), frac_dir
                    )
                elif status is RevisedStatus.INFEASIBLE:
                    self.pseudo.record(
                        j, direction, infeasible_degradation, frac_dir
                    )
                # NEEDS_FALLBACK / UNBOUNDED: budget blown or numerics —
                # learn nothing, never escalate to the dense oracle.
        self.lp.stats.strong_branch_probes += probes
        return len(candidates), probes

    # -- helpers ------------------------------------------------------------
    def _dive(
        self,
        lb: np.ndarray,
        ub: np.ndarray,
        x: np.ndarray,
        basis: Optional[Basis],
    ) -> Optional[np.ndarray]:
        """Rounding dive: repeatedly fix the most nearly-integral fractional
        variable to its rounded value and re-solve the LP, warm-starting
        each step from the previous one's basis.  When fixing to the
        nearest integer kills the LP the dive retries the opposite
        rounding before giving up, so it survives degenerate LP vertices
        (different simplex engines return different ones).  Returns a
        feasible integral point or ``None``.  At most ``2|integral|`` LP
        solves, so the dive is cheap relative to the tree it seeds."""
        tol = self.options.integrality_tolerance
        integral = self.integral
        lb = lb.copy()
        ub = ub.copy()
        current = x
        for _ in range(integral.shape[0]):
            fractional = [
                (j, current[j]) for j in integral
                if min(current[j] - math.floor(current[j]),
                       math.ceil(current[j]) - current[j]) > tol
            ]
            if not fractional:
                candidate = current.copy()
                candidate[integral] = np.round(candidate[integral])
                if self._is_feasible(self.lp.form, candidate):
                    return candidate
                return None
            j, value = min(
                fractional,
                key=lambda item: min(item[1] - math.floor(item[1]),
                                     math.ceil(item[1]) - item[1]),
            )
            nearest = float(round(value))
            other = float(math.floor(value) if nearest > value else math.ceil(value))
            result = None
            for fixed in (nearest, other):
                fixed = min(max(fixed, lb[j]), ub[j])
                try_lb, try_ub = lb.copy(), ub.copy()
                try_lb[j] = fixed
                try_ub[j] = fixed
                result, next_basis = self.lp.solve(try_lb, try_ub, basis)
                if result.status is LPStatus.OPTIMAL and result.x is not None:
                    lb, ub, basis = try_lb, try_ub, next_basis
                    break
            if result is None or result.status is not LPStatus.OPTIMAL or result.x is None:
                return None
            current = result.x
        return None

    def _pick_branch(
        self, fractional: List[Tuple[int, float]]
    ) -> Tuple[int, float]:
        """Choose the variable to branch on and its fractional part.

        Score ties break toward the lowest variable index, explicitly, so
        the chosen branch never depends on how the candidate list happened
        to be assembled.
        """
        if self.options.branching == "pseudocost":
            return max(
                fractional,
                key=lambda item: (self.pseudo.score(item[0], item[1]), -item[0]),
            )
        # Most fractional: distance of the fraction from the nearest integer.
        return max(
            fractional,
            key=lambda item: (min(item[1], 1.0 - item[1]), -item[0]),
        )

    @staticmethod
    def _is_feasible(form: MatrixForm, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Re-check a rounded candidate against the original matrices."""
        if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + tol):
            return False
        if form.a_eq.size and np.any(np.abs(form.a_eq @ x - form.b_eq) > tol):
            return False
        if np.any(x < form.lb - tol) or np.any(x > form.ub + tol):
            return False
        return True


def _emit_solve_done(tracer: Optional[Tracer], solution: Solution) -> None:
    """Emit the terminal ``solve_done`` event for a finished solution.

    The payload carries the summary scalars (status, objective, bound,
    node count, worker count, wall-clock seconds) that trace replay uses
    to recover ``workers`` — and, for coarse backends with no per-node
    stream, ``nodes``/``lp_solves``.
    """
    if tracer is None:
        return
    stats = solution.stats
    tracer.emit(
        "solve_done",
        status=solution.status.value,
        objective=solution.objective,
        best_bound=solution.best_bound,
        nodes=stats.nodes if stats is not None else 0,
        workers=stats.workers if stats is not None else 0,
        workers_requested=stats.workers_requested if stats is not None else 0,
        seconds=solution.solve_seconds,
    )


class BozoSolver(Solver):
    """Branch-and-bound MILP solver over the incremental simplex pipeline."""

    name = "bozo"

    def __init__(self, options: Optional[SolverOptions] = None) -> None:
        super().__init__(options)
        #: Ramp-phase telemetry of the last parallel solve (``None`` after
        #: a serial solve).
        self.last_ramp_stats: Optional[SolveStats] = None
        #: Per-subtree worker telemetry of the last parallel solve.
        self.last_worker_stats: List[SolveStats] = []
        #: ``(coefficients, rhs)`` of the root cuts applied by the last
        #: solve (serial, or the ramp of a parallel solve): the
        #: cut-augmented root relaxation is the presolved model's rows
        #: plus exactly these ``<=`` rows.
        self.last_root_cuts: List[Tuple[np.ndarray, float]] = []

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` to optimality (or the configured limits)."""
        options = self.options
        workers = options.workers
        if workers > 1 and options.clamp_workers:
            # More processes than cores makes tree search slower, not
            # faster; on a single-core machine fall back to serial.
            workers = min(workers, os.cpu_count() or 1)
        if workers > 1 and options.node_selection != "depth_first":
            from repro.solvers.parallel import solve_parallel

            return solve_parallel(self, model, workers=workers)
        self.last_ramp_stats = None
        self.last_worker_stats = []
        self.last_root_cuts = []
        return self._solve_serial(model)

    def _solve_serial(self, model: Model) -> Solution:
        start = time.monotonic()
        stats = SolveStats()
        if self.options.workers > 1:
            stats.workers_requested = self.options.workers
        tracer = make_tracer(self.options.trace)
        reporter = ProgressReporter(
            self.options.on_progress, self.options.progress_interval, start=start
        )
        if tracer is not None:
            tracer.emit("solve_started", solver=self.name)
        prepared = self._prepared_form(model, stats, start, tracer=tracer)
        if isinstance(prepared, Solution):
            _emit_solve_done(tracer, prepared)
            return prepared
        form = prepared
        lp = _LPBackend(
            form, self.options.warm_start, stats, tracer=tracer,
            pricing_block_size=self.options.pricing_block_size,
            pricing=self.options.pricing,
        )
        engine = _TreeSearch(
            self.options, form, lp, start=start, tracer=tracer, reporter=reporter
        )
        if self.options.incumbent is not None:
            engine.seed_incumbent(self.options.incumbent)
        root = _Node(-math.inf, 1, form.lb.copy(), form.ub.copy())
        outcome = engine.run([root])
        self.last_root_cuts = engine.applied_cuts
        return self._assemble(
            form, outcome, stats, start, tracer=tracer, reporter=reporter
        )

    # -- shared pipeline pieces (also used by the parallel driver) ----------
    def _prepared_form(
        self,
        model: Model,
        stats: SolveStats,
        start: float,
        tracer: Optional[Tracer] = None,
    ) -> Union[MatrixForm, Solution]:
        """Matrix form after optional presolve, or a terminal Solution."""
        form = model.to_matrices()
        if self.options.presolve:
            from repro.solvers.presolve import presolve

            presolve_start = time.monotonic()
            reduction = presolve(form)
            presolve_seconds = time.monotonic() - presolve_start
            stats.add_phase("presolve", presolve_seconds)
            if tracer is not None:
                tracer.emit("phase", name="presolve", seconds=presolve_seconds)
            if reduction.proven_infeasible:
                return Solution(
                    SolveStatus.INFEASIBLE, iterations=0,
                    solve_seconds=time.monotonic() - start, solver_name=self.name,
                    stats=stats,
                )
            assert reduction.form is not None
            form = reduction.form
        return form

    def _assemble(
        self,
        form: MatrixForm,
        out: _SearchOutcome,
        stats: SolveStats,
        start: float,
        tracer: Optional[Tracer] = None,
        reporter: Optional[ProgressReporter] = None,
    ) -> Solution:
        """Turn a search outcome into the caller-facing Solution."""
        elapsed = time.monotonic() - start
        stats.nodes = out.nodes
        search_seconds = max(
            0.0, elapsed - stats.phase_seconds.get("lp", 0.0)
            - stats.phase_seconds.get("presolve", 0.0),
        )
        stats.add_phase("search", search_seconds)
        if tracer is not None:
            tracer.emit("phase", name="search", seconds=search_seconds)
        solution = self._assemble_solution(form, out, stats, elapsed)
        _emit_solve_done(tracer, solution)
        if reporter is not None:
            reporter.report(
                nodes=stats.nodes,
                incumbent=(
                    solution.objective
                    if solution.status.has_solution
                    else math.inf
                ),
                bound=(
                    solution.best_bound
                    if not math.isnan(solution.best_bound)
                    else -math.inf
                ),
                force=True,
            )
        return solution

    def _assemble_solution(
        self,
        form: MatrixForm,
        out: _SearchOutcome,
        stats: SolveStats,
        elapsed: float,
    ) -> Solution:
        """Map the search outcome onto a status + Solution (no side effects)."""
        if out.incumbent_x is not None:
            status = SolveStatus.FEASIBLE if out.hit_limit else SolveStatus.OPTIMAL
            bound = (
                out.best_open_bound
                if out.hit_limit and out.best_open_bound > -math.inf
                else out.incumbent_obj
            )
            values = self._to_values(form, out.incumbent_x)
            return Solution(
                status=status, objective=out.incumbent_obj, values=values,
                best_bound=bound, iterations=out.nodes,
                solve_seconds=elapsed, solver_name=self.name, stats=stats,
            )
        if out.root_unbounded:
            return Solution(SolveStatus.UNBOUNDED, iterations=out.nodes,
                            solve_seconds=elapsed, solver_name=self.name, stats=stats)
        if out.hit_limit:
            bound = out.best_open_bound if out.best_open_bound > -math.inf else math.nan
            return Solution(SolveStatus.UNKNOWN, best_bound=bound,
                            iterations=out.nodes,
                            solve_seconds=elapsed, solver_name=self.name, stats=stats)
        return Solution(SolveStatus.INFEASIBLE, iterations=out.nodes,
                        solve_seconds=elapsed, solver_name=self.name, stats=stats)

    @staticmethod
    def _to_values(form: MatrixForm, x: np.ndarray) -> Dict:
        return {var: float(x[j]) for j, var in enumerate(form.variables)}
