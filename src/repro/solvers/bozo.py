"""*Bozo* — a from-scratch branch-and-bound MILP solver.

The paper solved its MILP models with Bozo, L. J. Hafer's branch-and-bound
code layered on the commercial XLP simplex.  This module is the
reproduction's equivalent: LP-relaxation branch and bound layered on an
incremental LP pipeline.  The standard form is built **once** at the root
(:class:`~repro.solvers.revised.StandardFormLP`); each node mutates only
the branched variable bound in place and warm-starts the revised simplex
from its parent's optimal basis, falling back to the dense two-phase
tableau (:mod:`repro.solvers.simplex`) whenever the incremental path
signals trouble.

Features (all selectable through :class:`~repro.solvers.base.SolverOptions`):

* best-first (default) or depth-first node selection,
* most-fractional or pseudocost branching (pseudocosts learn from the
  *observed* parent-to-child LP objective degradation),
* warm-started LP relaxations (``warm_start=False`` restores the original
  cold dense solve per node),
* incumbent rounding/repair for near-integral LP solutions,
* wall-clock and node limits with a FEASIBLE (incumbent, gap > 0) result,
* full :class:`~repro.milp.solution.SolveStats` telemetry on every result.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.milp.model import MatrixForm, Model
from repro.milp.solution import Solution, SolveStats, SolveStatus
from repro.solvers.base import Solver, SolverOptions
from repro.solvers.revised import Basis, StandardFormLP, solve_with_fallback
from repro.solvers.simplex import LPResult, LPStatus, solve_lp


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its parent LP bound."""

    bound: float
    tiebreak: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)
    #: Parent's optimal basis, the warm start for this node's LP.
    basis: Optional[Basis] = field(compare=False, default=None)
    #: Variable branched on to create this node (-1 at the root).
    branch_var: int = field(compare=False, default=-1)
    #: ``"down"`` or ``"up"`` branch direction.
    branch_dir: str = field(compare=False, default="")
    #: Fractional distance the branch must close (f down, 1-f up).
    branch_fraction: float = field(compare=False, default=0.0)


class _Pseudocosts:
    """Per-variable average objective degradation used for branching."""

    def __init__(self, n: int) -> None:
        self.up_sum = np.zeros(n)
        self.up_count = np.zeros(n)
        self.down_sum = np.zeros(n)
        self.down_count = np.zeros(n)

    def record(self, j: int, direction: str, degradation: float, fraction: float) -> None:
        per_unit = degradation / max(fraction, 1e-9)
        if direction == "up":
            self.up_sum[j] += per_unit
            self.up_count[j] += 1
        else:
            self.down_sum[j] += per_unit
            self.down_count[j] += 1

    def observe_child(self, node: _Node, child_objective: float) -> None:
        """Learn from a solved child: the true parent-to-child degradation."""
        if node.branch_var < 0:
            return
        degradation = max(child_objective - node.bound, 0.0)
        self.record(node.branch_var, node.branch_dir, degradation, node.branch_fraction)

    def score(self, j: int, fraction: float) -> float:
        up = self.up_sum[j] / self.up_count[j] if self.up_count[j] else 1.0
        down = self.down_sum[j] / self.down_count[j] if self.down_count[j] else 1.0
        # Classic product rule, guarded away from zero.
        return max(up * (1.0 - fraction), 1e-6) * max(down * fraction, 1e-6)


class _LPBackend:
    """Per-MILP LP engine: one standard form, bound mutation, warm starts.

    One instance lives for the duration of a :meth:`BozoSolver.solve` call.
    It owns the :class:`StandardFormLP` built from the (presolved) matrix
    form and funnels every relaxation — root, dive steps, tree nodes —
    through :meth:`solve`, accumulating telemetry in a shared
    :class:`SolveStats`.
    """

    def __init__(self, form: MatrixForm, warm_start: bool, stats: SolveStats) -> None:
        self.form = form
        self.stats = stats
        self.sf = StandardFormLP.from_matrix_form(form) if warm_start else None

    def solve(
        self, lb: np.ndarray, ub: np.ndarray, basis: Optional[Basis] = None
    ) -> Tuple[LPResult, Optional[Basis]]:
        """Solve the relaxation under ``lb``/``ub``; returns (result, basis)."""
        start = time.monotonic()
        self.stats.lp_solves += 1
        form = self.form
        if self.sf is None:
            result = solve_lp(
                form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
                lb, ub, c0=form.c0,
            )
            self.stats.lp_pivots += result.iterations
            self.stats.add_phase("lp", time.monotonic() - start)
            return result, None
        self.sf.set_bounds(lb, ub)
        if basis is not None:
            self.stats.warm_starts += 1
        result, final_basis, fell_back = solve_with_fallback(self.sf, basis)
        self.stats.lp_pivots += result.iterations
        if fell_back:
            self.stats.fallbacks += 1
        elif basis is not None:
            self.stats.warm_start_hits += 1
        self.stats.add_phase("lp", time.monotonic() - start)
        return result, final_basis


class BozoSolver(Solver):
    """Branch-and-bound MILP solver over the incremental simplex pipeline."""

    name = "bozo"

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` to optimality (or the configured limits)."""
        start = time.monotonic()
        stats = SolveStats()
        form = model.to_matrices()
        if self.options.presolve:
            from repro.solvers.presolve import presolve

            presolve_start = time.monotonic()
            reduction = presolve(form)
            stats.add_phase("presolve", time.monotonic() - presolve_start)
            if reduction.proven_infeasible:
                return Solution(
                    SolveStatus.INFEASIBLE, iterations=0,
                    solve_seconds=time.monotonic() - start, solver_name=self.name,
                    stats=stats,
                )
            assert reduction.form is not None
            form = reduction.form
        n = form.c.shape[0]
        integral = np.where(form.integrality)[0]
        tol = self.options.integrality_tolerance
        lp = _LPBackend(form, self.options.warm_start, stats)

        incumbent_x: Optional[np.ndarray] = None
        incumbent_obj = math.inf
        nodes_processed = 0
        counter = itertools.count()
        pseudo = _Pseudocosts(n)

        root = _Node(-math.inf, next(counter), form.lb.copy(), form.ub.copy())
        heap: List[_Node] = [root]
        stack: List[_Node] = []
        depth_first = self.options.node_selection == "depth_first"
        if depth_first:
            stack = [root]
            heap = []

        best_open_bound = -math.inf
        root_unbounded = False

        def pop_node() -> Optional[_Node]:
            if depth_first:
                return stack.pop() if stack else None
            return heapq.heappop(heap) if heap else None

        def push_node(node: _Node) -> None:
            if depth_first:
                stack.append(node)
            else:
                heapq.heappush(heap, node)

        hit_limit = False
        while True:
            node = pop_node()
            if node is None:
                break
            if node.bound >= incumbent_obj - self.options.gap_tolerance * max(1.0, abs(incumbent_obj)):
                continue  # pruned by bound
            if time.monotonic() - start > self.options.time_limit or (
                self.options.node_limit and nodes_processed >= self.options.node_limit
            ):
                hit_limit = True
                best_open_bound = min(
                    node.bound, *(other.bound for other in (heap or stack))
                ) if (heap or stack) else node.bound
                break

            result, node_basis = lp.solve(node.lb, node.ub, node.basis)
            nodes_processed += 1
            if result.status is LPStatus.INFEASIBLE:
                continue
            if result.status is LPStatus.UNBOUNDED:
                if nodes_processed == 1:
                    root_unbounded = True
                    break
                continue
            if result.status is LPStatus.ITERATION_LIMIT:
                # Treat as unexplored; keep the parent bound so the gap stays valid.
                continue

            assert result.x is not None
            lp_obj = result.objective
            pseudo.observe_child(node, lp_obj)
            if nodes_processed == 1 or (incumbent_x is None and nodes_processed % 16 == 0):
                # Rounding dive for a quick incumbent: always at the root,
                # then periodically for as long as the tree has none —
                # best-first search cannot prune anything without one.
                dived = self._dive(lp, node.lb, node.ub, result.x, integral, node_basis)
                if dived is not None:
                    objective = float(form.c @ dived) + form.c0
                    if objective < incumbent_obj - 1e-12:
                        incumbent_obj = objective
                        incumbent_x = dived
                        if self.options.verbose:
                            print(f"[bozo] dive incumbent {objective:.6g}")
            if lp_obj >= incumbent_obj - self.options.gap_tolerance * max(1.0, abs(incumbent_obj)):
                continue

            fractional = [
                (j, result.x[j] - math.floor(result.x[j] + tol))
                for j in integral
                if min(result.x[j] - math.floor(result.x[j]),
                       math.ceil(result.x[j]) - result.x[j]) > tol
            ]
            if not fractional:
                x = result.x.copy()
                x[integral] = np.round(x[integral])
                if self._is_feasible(form, x):
                    obj = float(form.c @ x) + form.c0
                    if obj < incumbent_obj - 1e-12:
                        incumbent_obj = obj
                        incumbent_x = x
                        if self.options.verbose:
                            print(f"[bozo] incumbent {obj:.6g} at node {nodes_processed}")
                continue

            branch_j, fraction = self._pick_branch(fractional, result.x, pseudo)
            value = result.x[branch_j]
            floor_value = math.floor(value + tol)

            down = _Node(
                lp_obj, next(counter), node.lb.copy(), node.ub.copy(),
                node.depth + 1, basis=node_basis,
                branch_var=branch_j, branch_dir="down", branch_fraction=fraction,
            )
            down.ub[branch_j] = float(floor_value)
            up = _Node(
                lp_obj, next(counter), node.lb.copy(), node.ub.copy(),
                node.depth + 1, basis=node_basis,
                branch_var=branch_j, branch_dir="up", branch_fraction=1.0 - fraction,
            )
            up.lb[branch_j] = float(floor_value + 1)
            # Depth-first explores the "more integral" child first for quick
            # incumbents: push the closer-to-value branch last (popped first).
            if value - floor_value > 0.5:
                push_node(down)
                push_node(up)
            else:
                push_node(up)
                push_node(down)

        elapsed = time.monotonic() - start
        stats.nodes = nodes_processed
        stats.add_phase("search", elapsed - stats.phase_seconds.get("lp", 0.0)
                        - stats.phase_seconds.get("presolve", 0.0))
        if incumbent_x is not None:
            status = SolveStatus.FEASIBLE if hit_limit else SolveStatus.OPTIMAL
            bound = best_open_bound if hit_limit and best_open_bound > -math.inf else incumbent_obj
            values = self._to_values(form, incumbent_x)
            return Solution(
                status=status, objective=incumbent_obj, values=values,
                best_bound=bound, iterations=nodes_processed,
                solve_seconds=elapsed, solver_name=self.name, stats=stats,
            )
        if root_unbounded:
            return Solution(SolveStatus.UNBOUNDED, iterations=nodes_processed,
                            solve_seconds=elapsed, solver_name=self.name, stats=stats)
        if hit_limit:
            bound = best_open_bound if best_open_bound > -math.inf else math.nan
            return Solution(SolveStatus.UNKNOWN, best_bound=bound,
                            iterations=nodes_processed,
                            solve_seconds=elapsed, solver_name=self.name, stats=stats)
        status = SolveStatus.INFEASIBLE
        return Solution(status, iterations=nodes_processed,
                        solve_seconds=elapsed, solver_name=self.name, stats=stats)

    # -- helpers ------------------------------------------------------------
    def _dive(
        self,
        lp: _LPBackend,
        lb: np.ndarray,
        ub: np.ndarray,
        x: np.ndarray,
        integral: np.ndarray,
        basis: Optional[Basis],
    ) -> Optional[np.ndarray]:
        """Rounding dive: repeatedly fix the most nearly-integral fractional
        variable to its rounded value and re-solve the LP, warm-starting
        each step from the previous one's basis.  When fixing to the
        nearest integer kills the LP the dive retries the opposite
        rounding before giving up, so it survives degenerate LP vertices
        (different simplex engines return different ones).  Returns a
        feasible integral point or ``None``.  At most ``2|integral|`` LP
        solves, so the dive is cheap relative to the tree it seeds."""
        tol = self.options.integrality_tolerance
        lb = lb.copy()
        ub = ub.copy()
        current = x
        for _ in range(integral.shape[0]):
            fractional = [
                (j, current[j]) for j in integral
                if min(current[j] - math.floor(current[j]),
                       math.ceil(current[j]) - current[j]) > tol
            ]
            if not fractional:
                candidate = current.copy()
                candidate[integral] = np.round(candidate[integral])
                if self._is_feasible(lp.form, candidate):
                    return candidate
                return None
            j, value = min(
                fractional,
                key=lambda item: min(item[1] - math.floor(item[1]),
                                     math.ceil(item[1]) - item[1]),
            )
            nearest = float(round(value))
            other = float(math.floor(value) if nearest > value else math.ceil(value))
            result = None
            for fixed in (nearest, other):
                fixed = min(max(fixed, lb[j]), ub[j])
                try_lb, try_ub = lb.copy(), ub.copy()
                try_lb[j] = fixed
                try_ub[j] = fixed
                result, next_basis = lp.solve(try_lb, try_ub, basis)
                if result.status is LPStatus.OPTIMAL and result.x is not None:
                    lb, ub, basis = try_lb, try_ub, next_basis
                    break
            if result is None or result.status is not LPStatus.OPTIMAL or result.x is None:
                return None
            current = result.x
        return None

    def _pick_branch(
        self,
        fractional: List[Tuple[int, float]],
        x: np.ndarray,
        pseudo: _Pseudocosts,
    ) -> Tuple[int, float]:
        """Choose the variable to branch on and its fractional part."""
        if self.options.branching == "pseudocost":
            best = max(fractional, key=lambda item: pseudo.score(item[0], item[1]))
            return best
        # Most fractional: distance of the fraction from the nearest integer.
        best = max(fractional, key=lambda item: min(item[1], 1.0 - item[1]))
        return best

    @staticmethod
    def _is_feasible(form: MatrixForm, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Re-check a rounded candidate against the original matrices."""
        if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + tol):
            return False
        if form.a_eq.size and np.any(np.abs(form.a_eq @ x - form.b_eq) > tol):
            return False
        if np.any(x < form.lb - tol) or np.any(x > form.ub + tol):
            return False
        return True

    @staticmethod
    def _to_values(form: MatrixForm, x: np.ndarray) -> Dict:
        return {var: float(x[j]) for j, var in enumerate(form.variables)}
