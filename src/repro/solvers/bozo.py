"""*Bozo* — a from-scratch branch-and-bound MILP solver.

The paper solved its MILP models with Bozo, L. J. Hafer's branch-and-bound
code layered on the commercial XLP simplex.  This module is the
reproduction's equivalent: LP-relaxation branch and bound layered on the
from-scratch simplex in :mod:`repro.solvers.simplex`.

Features (all selectable through :class:`~repro.solvers.base.SolverOptions`):

* best-first (default) or depth-first node selection,
* most-fractional or pseudocost branching,
* incumbent rounding/repair for near-integral LP solutions,
* wall-clock and node limits with a FEASIBLE (incumbent, gap > 0) result.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.milp.model import MatrixForm, Model
from repro.milp.solution import Solution, SolveStatus
from repro.solvers.base import Solver, SolverOptions
from repro.solvers.simplex import LPStatus, solve_lp


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its parent LP bound."""

    bound: float
    tiebreak: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)


class _Pseudocosts:
    """Per-variable average objective degradation used for branching."""

    def __init__(self, n: int) -> None:
        self.up_sum = np.zeros(n)
        self.up_count = np.zeros(n)
        self.down_sum = np.zeros(n)
        self.down_count = np.zeros(n)

    def record(self, j: int, direction: str, degradation: float, fraction: float) -> None:
        per_unit = degradation / max(fraction, 1e-9)
        if direction == "up":
            self.up_sum[j] += per_unit
            self.up_count[j] += 1
        else:
            self.down_sum[j] += per_unit
            self.down_count[j] += 1

    def score(self, j: int, fraction: float) -> float:
        up = self.up_sum[j] / self.up_count[j] if self.up_count[j] else 1.0
        down = self.down_sum[j] / self.down_count[j] if self.down_count[j] else 1.0
        # Classic product rule, guarded away from zero.
        return max(up * (1.0 - fraction), 1e-6) * max(down * fraction, 1e-6)


class BozoSolver(Solver):
    """Branch-and-bound MILP solver over the from-scratch simplex."""

    name = "bozo"

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` to optimality (or the configured limits)."""
        start = time.monotonic()
        form = model.to_matrices()
        if self.options.presolve:
            from repro.solvers.presolve import presolve

            reduction = presolve(form)
            if reduction.proven_infeasible:
                return Solution(
                    SolveStatus.INFEASIBLE, iterations=0,
                    solve_seconds=time.monotonic() - start, solver_name=self.name,
                )
            assert reduction.form is not None
            form = reduction.form
        n = form.c.shape[0]
        integral = np.where(form.integrality)[0]
        tol = self.options.integrality_tolerance

        incumbent_x: Optional[np.ndarray] = None
        incumbent_obj = math.inf
        nodes_processed = 0
        counter = itertools.count()
        pseudo = _Pseudocosts(n)

        root = _Node(-math.inf, next(counter), form.lb.copy(), form.ub.copy())
        heap: List[_Node] = [root]
        stack: List[_Node] = []
        depth_first = self.options.node_selection == "depth_first"
        if depth_first:
            stack = [root]
            heap = []

        best_open_bound = -math.inf
        root_unbounded = False

        def pop_node() -> Optional[_Node]:
            if depth_first:
                return stack.pop() if stack else None
            return heapq.heappop(heap) if heap else None

        def push_node(node: _Node) -> None:
            if depth_first:
                stack.append(node)
            else:
                heapq.heappush(heap, node)

        hit_limit = False
        while True:
            node = pop_node()
            if node is None:
                break
            if node.bound >= incumbent_obj - self.options.gap_tolerance * max(1.0, abs(incumbent_obj)):
                continue  # pruned by bound
            if time.monotonic() - start > self.options.time_limit:
                hit_limit = True
                best_open_bound = min(
                    node.bound, *(other.bound for other in (heap or stack))
                ) if (heap or stack) else node.bound
                break
            if self.options.node_limit and nodes_processed >= self.options.node_limit:
                hit_limit = True
                break

            result = solve_lp(
                form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
                node.lb, node.ub, c0=form.c0,
            )
            nodes_processed += 1
            if result.status is LPStatus.INFEASIBLE:
                continue
            if result.status is LPStatus.UNBOUNDED:
                if nodes_processed == 1:
                    root_unbounded = True
                    break
                continue
            if result.status is LPStatus.ITERATION_LIMIT:
                # Treat as unexplored; keep the parent bound so the gap stays valid.
                continue

            assert result.x is not None
            lp_obj = result.objective
            if nodes_processed == 1:
                # Root node: try a rounding dive for a quick incumbent.
                dived = self._dive(form, node.lb, node.ub, result.x, integral)
                if dived is not None:
                    objective = float(form.c @ dived) + form.c0
                    if objective < incumbent_obj - 1e-12:
                        incumbent_obj = objective
                        incumbent_x = dived
                        if self.options.verbose:
                            print(f"[bozo] dive incumbent {objective:.6g}")
            if lp_obj >= incumbent_obj - self.options.gap_tolerance * max(1.0, abs(incumbent_obj)):
                continue

            fractional = [
                (j, result.x[j] - math.floor(result.x[j] + tol))
                for j in integral
                if min(result.x[j] - math.floor(result.x[j]),
                       math.ceil(result.x[j]) - result.x[j]) > tol
            ]
            if not fractional:
                x = result.x.copy()
                x[integral] = np.round(x[integral])
                if self._is_feasible(form, x):
                    obj = float(form.c @ x) + form.c0
                    if obj < incumbent_obj - 1e-12:
                        incumbent_obj = obj
                        incumbent_x = x
                        if self.options.verbose:
                            print(f"[bozo] incumbent {obj:.6g} at node {nodes_processed}")
                continue

            branch_j, fraction = self._pick_branch(fractional, result.x, pseudo)
            value = result.x[branch_j]
            floor_value = math.floor(value + tol)

            down = _Node(lp_obj, next(counter), node.lb.copy(), node.ub.copy(), node.depth + 1)
            down.ub[branch_j] = float(floor_value)
            up = _Node(lp_obj, next(counter), node.lb.copy(), node.ub.copy(), node.depth + 1)
            up.lb[branch_j] = float(floor_value + 1)
            pseudo.record(branch_j, "down", 0.0, fraction)
            pseudo.record(branch_j, "up", 0.0, 1.0 - fraction)
            # Depth-first explores the "more integral" child first for quick
            # incumbents: push the closer-to-value branch last (popped first).
            if value - floor_value > 0.5:
                push_node(down)
                push_node(up)
            else:
                push_node(up)
                push_node(down)

        elapsed = time.monotonic() - start
        if incumbent_x is not None:
            status = SolveStatus.FEASIBLE if hit_limit else SolveStatus.OPTIMAL
            bound = best_open_bound if hit_limit and best_open_bound > -math.inf else incumbent_obj
            values = self._to_values(form, incumbent_x)
            return Solution(
                status=status, objective=incumbent_obj, values=values,
                best_bound=bound, iterations=nodes_processed,
                solve_seconds=elapsed, solver_name=self.name,
            )
        if root_unbounded:
            return Solution(SolveStatus.UNBOUNDED, iterations=nodes_processed,
                            solve_seconds=elapsed, solver_name=self.name)
        if hit_limit:
            return Solution(SolveStatus.UNKNOWN, iterations=nodes_processed,
                            solve_seconds=elapsed, solver_name=self.name)
        status = SolveStatus.INFEASIBLE
        return Solution(status, iterations=nodes_processed,
                        solve_seconds=elapsed, solver_name=self.name)

    # -- helpers ------------------------------------------------------------
    def _dive(
        self,
        form: MatrixForm,
        lb: np.ndarray,
        ub: np.ndarray,
        x: np.ndarray,
        integral: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Rounding dive: repeatedly fix the most nearly-integral fractional
        variable to its rounded value and re-solve the LP.  Returns a
        feasible integral point or ``None``.  At most ``|integral|`` LP
        solves, so the dive is cheap relative to the tree search it seeds."""
        tol = self.options.integrality_tolerance
        lb = lb.copy()
        ub = ub.copy()
        current = x
        for _ in range(integral.shape[0]):
            fractional = [
                (j, current[j]) for j in integral
                if min(current[j] - math.floor(current[j]),
                       math.ceil(current[j]) - current[j]) > tol
            ]
            if not fractional:
                candidate = current.copy()
                candidate[integral] = np.round(candidate[integral])
                if self._is_feasible(form, candidate):
                    return candidate
                return None
            j, value = min(
                fractional,
                key=lambda item: min(item[1] - math.floor(item[1]),
                                     math.ceil(item[1]) - item[1]),
            )
            fixed = float(round(value))
            fixed = min(max(fixed, lb[j]), ub[j])
            lb[j] = fixed
            ub[j] = fixed
            result = solve_lp(
                form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
                lb, ub, c0=form.c0,
            )
            if result.status is not LPStatus.OPTIMAL or result.x is None:
                return None
            current = result.x
        return None

    def _pick_branch(
        self,
        fractional: List[Tuple[int, float]],
        x: np.ndarray,
        pseudo: _Pseudocosts,
    ) -> Tuple[int, float]:
        """Choose the variable to branch on and its fractional part."""
        if self.options.branching == "pseudocost":
            best = max(fractional, key=lambda item: pseudo.score(item[0], item[1]))
            return best
        # Most fractional: distance of the fraction from the nearest integer.
        best = max(fractional, key=lambda item: min(item[1], 1.0 - item[1]))
        return best

    @staticmethod
    def _is_feasible(form: MatrixForm, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Re-check a rounded candidate against the original matrices."""
        if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + tol):
            return False
        if form.a_eq.size and np.any(np.abs(form.a_eq @ x - form.b_eq) > tol):
            return False
        if np.any(x < form.lb - tol) or np.any(x > form.ub + tol):
            return False
        return True

    @staticmethod
    def _to_values(form: MatrixForm, x: np.ndarray) -> Dict:
        return {var: float(x[j]) for j, var in enumerate(form.variables)}
