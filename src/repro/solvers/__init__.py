"""Solver backends: a from-scratch simplex + branch-and-bound ("Bozo") and
an independent HiGHS (scipy) cross-check, behind one interface."""

from repro.solvers.base import Solver, SolverOptions
from repro.solvers.bozo import BozoSolver
from repro.solvers.presolve import PresolveResult, presolve
from repro.solvers.registry import available_solvers, get_solver, register_solver
from repro.solvers.simplex import LPResult, LPStatus, solve_lp

__all__ = [
    "Solver",
    "SolverOptions",
    "BozoSolver",
    "PresolveResult",
    "presolve",
    "available_solvers",
    "get_solver",
    "register_solver",
    "LPResult",
    "LPStatus",
    "solve_lp",
]
