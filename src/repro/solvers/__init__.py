"""Solver backends: a from-scratch simplex + branch-and-bound ("Bozo") and
an independent HiGHS (scipy) cross-check, behind one interface.

The LP pipeline is layered: :class:`StandardFormLP` is built once per MILP
and mutated in place, :func:`solve_revised` warm-starts from a previous
basis, and the dense tableau :func:`solve_lp` remains the cold-start
fallback and correctness oracle."""

from repro.milp.solution import SolveStats
from repro.solvers.base import Solver, SolverOptions
from repro.solvers.bozo import BozoSolver
from repro.solvers.presolve import PresolveResult, presolve
from repro.solvers.registry import available_solvers, get_solver, register_solver
from repro.solvers.revised import (
    Basis,
    RevisedResult,
    RevisedStatus,
    StandardFormLP,
    solve_revised,
    solve_with_fallback,
)
from repro.solvers.simplex import LPResult, LPStatus, solve_lp

__all__ = [
    "Solver",
    "SolverOptions",
    "SolveStats",
    "BozoSolver",
    "PresolveResult",
    "presolve",
    "available_solvers",
    "get_solver",
    "register_solver",
    "Basis",
    "RevisedResult",
    "RevisedStatus",
    "StandardFormLP",
    "solve_revised",
    "solve_with_fallback",
    "LPResult",
    "LPStatus",
    "solve_lp",
]
