"""Solver registry: look up backends by name.

``"auto"`` picks HiGHS when available (it always is in this environment,
via scipy) and falls back to the from-scratch Bozo solver otherwise, so
the library keeps working with no scipy installed.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Optional, Type

from repro.errors import UnknownSolverError
from repro.solvers.base import Solver, SolverOptions

_REGISTRY: Dict[str, Callable[[Optional[SolverOptions]], Solver]] = {}


def register_solver(name: str, factory: Callable[[Optional[SolverOptions]], Solver]) -> None:
    """Register a backend under ``name`` (overwrites an existing entry)."""
    _REGISTRY[name] = factory


def available_solvers() -> tuple:
    """Names of all registered backends (plus ``auto``)."""
    return tuple(sorted(_REGISTRY)) + ("auto",)


def resolve_solver_name(name: str = "auto") -> str:
    """The concrete backend ``"auto"`` resolves to on this host.

    Used by the service layer's fingerprints: a cache key must name the
    backend that would actually run, not the alias, so results computed
    under ``auto`` never collide across hosts with different backends.
    """
    if name == "auto":
        return "highs" if "highs" in _REGISTRY else "bozo"
    return name


def get_solver(name: str = "auto", options: Optional[SolverOptions] = None) -> Solver:
    """Instantiate a solver backend.

    Args:
        name: ``"bozo"``, ``"highs"``, or ``"auto"``.
        options: Shared solver options.

    Raises:
        UnknownSolverError: For an unknown name; the message lists the
            registered backends and suggests the nearest name if one is
            close.
    """
    name = resolve_solver_name(name)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        message = (
            f"unknown solver {name!r}; available: {', '.join(available_solvers())}"
        )
        close = difflib.get_close_matches(name, available_solvers(), n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise UnknownSolverError(message) from None
    return factory(options)


def _register_builtins() -> None:
    from repro.solvers.bozo import BozoSolver

    register_solver("bozo", lambda options: BozoSolver(options))

    def _parallel(options):
        from repro.solvers.parallel import ParallelBozoSolver

        return ParallelBozoSolver(options)

    register_solver("bozo-parallel", _parallel)
    try:
        from repro.solvers.highs import HighsSolver
    except ImportError:  # scipy absent: from-scratch solver only
        return
    register_solver("highs", lambda options: HighsSolver(options))


_register_builtins()
