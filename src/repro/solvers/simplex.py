"""A from-scratch dense two-phase primal simplex solver.

This is the correctness oracle and fallback path underneath
:mod:`repro.solvers.bozo` (the branch-and-bound reimplementation of
Hafer's *Bozo*, which the paper used through the commercial XLP
simplex).  The production hot path is the incremental revised simplex in
:mod:`repro.solvers.revised`; this tableau engine re-solves anything the
incremental path declines to certify, runs every node when
``SolverOptions(warm_start=False)`` restores the original per-node
engine, and serves as the ground truth the revised engine is
property-tested against.  It is deliberately a classic textbook tableau
method, vectorized with numpy:

* variables are shifted/split so every column is nonnegative,
* finite upper bounds become explicit rows,
* phase 1 minimizes artificial variables; phase 2 the real objective,
* Dantzig pricing with an automatic switch to Bland's rule to break
  cycling.

It solves the LP relaxations produced by the SOS formulation (hundreds of
rows) in milliseconds, which is all the paper's instances require.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional, Tuple

import numpy as np

#: Feasibility / pivot tolerance used throughout the tableau method.
EPS = 1e-9
#: After this many consecutive Dantzig pivots without objective progress we
#: switch to Bland's rule, which is slower but provably acyclic.
STALL_LIMIT = 64


class LPStatus(enum.Enum):
    """Outcome of a linear-program solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclasses.dataclass
class LPResult:
    """Result of :func:`solve_lp`.

    Attributes:
        status: Solve outcome.
        x: Primal solution in the *original* variable space (``None``
            unless status is OPTIMAL).
        objective: ``c @ x + c0`` at the solution.
        iterations: Total simplex pivots across both phases.
        counters: Per-loop pivot attribution when the revised-simplex
            engine produced this result (see
            :class:`repro.solvers.revised.PivotCounters`); ``None`` on
            the dense tableau path, which does not break pivots down.
        reduced_costs: Structural reduced costs at the optimum when the
            revised engine was asked to capture them (branch and bound
            uses them for reduced-cost fixing); ``None`` on the dense
            tableau path and on solves that did not request them.
    """

    status: LPStatus
    x: Optional[np.ndarray]
    objective: float
    iterations: int
    counters: Optional[object] = None
    reduced_costs: Optional[np.ndarray] = None


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    c0: float = 0.0,
    max_iterations: int = 200_000,
) -> LPResult:
    """Minimize ``c @ x + c0`` s.t. ``a_ub x <= b_ub``, ``a_eq x == b_eq``,
    ``lb <= x <= ub``.

    Args:
        c: Objective coefficients, shape ``(n,)``.
        a_ub: Inequality matrix, shape ``(m_ub, n)``.
        b_ub: Inequality right-hand sides.
        a_eq: Equality matrix, shape ``(m_eq, n)``.
        b_eq: Equality right-hand sides.
        lb: Per-variable lower bounds (``-inf`` allowed).
        ub: Per-variable upper bounds (``+inf`` allowed).
        c0: Objective constant.
        max_iterations: Pivot budget across both phases.

    Returns:
        An :class:`LPResult`; ``x`` is in the caller's variable space.
    """
    c = np.asarray(c, dtype=float)
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    n = c.shape[0]
    if np.any(lb > ub + EPS):
        return LPResult(LPStatus.INFEASIBLE, None, math.nan, 0)

    # --- variable transformation to y >= 0 ---------------------------------
    # For each original variable x_j:
    #   finite lb:            x_j = lb_j + y_j            (shift)
    #   lb = -inf, finite ub: x_j = ub_j - y_j            (reflect)
    #   free both sides:      x_j = y_j^+ - y_j^-         (split)
    shift = np.zeros(n)
    scale = np.ones(n)
    split_cols = []  # original indices of free variables (get a second column)
    for j in range(n):
        if math.isfinite(lb[j]):
            shift[j] = lb[j]
        elif math.isfinite(ub[j]):
            shift[j] = ub[j]
            scale[j] = -1.0
        else:
            split_cols.append(j)

    def transform_matrix(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rewrite columns of ``a`` in y-space; returns (A_y, rhs_shift)."""
        if a.size == 0:
            return np.zeros((a.shape[0], n + len(split_cols))), np.zeros(a.shape[0])
        rhs_shift = a @ shift
        a_y = a * scale  # broadcast per column
        if split_cols:
            a_y = np.hstack([a_y, -a[:, split_cols]])
        return a_y, rhs_shift

    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
    b_eq = np.asarray(b_eq, dtype=float).reshape(-1)

    a_ub_y, ub_shift = transform_matrix(a_ub)
    a_eq_y, eq_shift = transform_matrix(a_eq)
    b_ub_y = b_ub - ub_shift
    b_eq_y = b_eq - eq_shift

    # Finite upper bounds in y-space become extra <= rows: y_j <= span_j.
    span_rows = []
    span_rhs = []
    total_cols = n + len(split_cols)
    for j in range(n):
        if math.isfinite(lb[j]) and math.isfinite(ub[j]):
            if ub[j] - lb[j] <= EPS:
                continue  # fixed variable: y_j <= 0 handled by nonnegativity
            row = np.zeros(total_cols)
            row[j] = 1.0
            span_rows.append(row)
            span_rhs.append(ub[j] - lb[j])
    if span_rows:
        a_ub_y = np.vstack([a_ub_y, np.vstack(span_rows)])
        b_ub_y = np.concatenate([b_ub_y, np.asarray(span_rhs)])

    # Fixed variables (lb == ub): their y must be 0; drop them by zeroing the
    # objective (their contribution is inside the shift already) and forcing
    # y_j <= 0 via an upper bound row is wasteful -- instead clamp columns.
    fixed = np.isfinite(lb) & np.isfinite(ub) & (ub - lb <= EPS)
    if np.any(fixed):
        a_ub_y[:, np.where(fixed)[0]] = 0.0
        a_eq_y[:, np.where(fixed)[0]] = 0.0

    c_y = c * scale
    if split_cols:
        c_y = np.concatenate([c_y, -c[split_cols]])
    if np.any(fixed):
        c_y[np.where(fixed)[0]] = 0.0
    obj_shift = float(c @ shift) + c0

    status, y, iterations = _two_phase(c_y, a_ub_y, b_ub_y, a_eq_y, b_eq_y, max_iterations)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, None, math.nan, iterations)

    # Map back to x-space.
    x = shift + scale * y[:n]
    for k, j in enumerate(split_cols):
        x[j] = y[j] - y[n + k]
    if np.any(fixed):
        x[np.where(fixed)[0]] = lb[np.where(fixed)[0]]
    objective = float(c @ x) + c0
    return LPResult(LPStatus.OPTIMAL, x, objective, iterations)


def _two_phase(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iterations: int,
) -> Tuple[LPStatus, Optional[np.ndarray], int]:
    """Two-phase simplex for min c@y, A_ub y <= b_ub, A_eq y = b_eq, y >= 0."""
    n = c.shape[0]
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    if m == 0:
        # No rows: every y >= 0 is feasible, so any negative cost is a ray.
        if np.any(c < -EPS):
            return LPStatus.UNBOUNDED, None, 0
        return LPStatus.OPTIMAL, np.zeros(n), 0

    # Row block [A | slacks | artificials], with b >= 0 after sign flips.
    a = np.vstack([a_ub, a_eq]) if m else np.zeros((0, n))
    b = np.concatenate([b_ub, b_eq])
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    # Slack columns: +1 for a <=-row kept as-is, -1 (surplus) for a flipped
    # <=-row; equality rows get no slack.
    slack = np.zeros((m, m_ub))
    for i in range(m_ub):
        slack[i, i] = -1.0 if negative[i] else 1.0

    # Artificial columns for every row whose slack cannot serve as a basic
    # start (flipped <= rows and all equality rows).
    needs_artificial = np.ones(m, dtype=bool)
    for i in range(m_ub):
        needs_artificial[i] = bool(negative[i])
    artificial_rows = np.where(needs_artificial)[0]
    num_artificial = artificial_rows.shape[0]
    art = np.zeros((m, num_artificial))
    for k, i in enumerate(artificial_rows):
        art[i, k] = 1.0

    tableau = np.hstack([a, slack, art]) if m else np.zeros((0, n + m_ub))
    total = n + m_ub + num_artificial

    basis = np.empty(m, dtype=int)
    art_col = n + m_ub
    for i in range(m):
        if needs_artificial[i]:
            basis[i] = art_col
            art_col += 1
        else:
            basis[i] = n + i  # its own slack

    iterations = 0

    if num_artificial:
        # Phase 1: minimize the sum of artificials.
        phase1_cost = np.zeros(total)
        phase1_cost[n + m_ub :] = 1.0
        status, iterations = _simplex_core(
            tableau, b, phase1_cost, basis, max_iterations, iterations
        )
        if status is not LPStatus.OPTIMAL:
            return status, None, iterations
        phase1_value = float(phase1_cost[basis] @ b)
        if phase1_value > 1e-7:
            return LPStatus.INFEASIBLE, None, iterations
        # Pivot remaining artificials out of the basis where possible.
        for i in range(m):
            if basis[i] >= n + m_ub:
                pivot_col = -1
                for j in range(n + m_ub):
                    if abs(tableau[i, j]) > 1e-7:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    _pivot(tableau, b, basis, i, pivot_col)
                # A row with no eligible column is redundant; its artificial
                # stays basic at value 0, which is harmless in phase 2 because
                # the artificial columns are now frozen out of pricing.

    # Phase 2: real objective; artificial columns are excluded from pricing.
    phase2_cost = np.concatenate([c, np.zeros(m_ub), np.full(num_artificial, np.inf)])
    status, iterations = _simplex_core(
        tableau, b, phase2_cost, basis, max_iterations, iterations, priced_cols=n + m_ub
    )
    if status is not LPStatus.OPTIMAL:
        return status, None, iterations

    y = np.zeros(total)
    y[basis] = b
    return LPStatus.OPTIMAL, y[:n], iterations


def _pivot(tableau: np.ndarray, b: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col)."""
    pivot_value = tableau[row, col]
    tableau[row] /= pivot_value
    b[row] /= pivot_value
    column = tableau[:, col].copy()
    column[row] = 0.0
    tableau -= np.outer(column, tableau[row])
    b -= column * b[row]
    # Guard against drift: basic feasibility requires b >= 0.
    np.maximum(b, 0.0, out=b, where=(b > -1e-9) & (b < 0))
    basis[row] = col


def _simplex_core(
    tableau: np.ndarray,
    b: np.ndarray,
    cost: np.ndarray,
    basis: np.ndarray,
    max_iterations: int,
    iterations: int,
    priced_cols: Optional[int] = None,
) -> Tuple[LPStatus, int]:
    """Run primal simplex pivots until optimality/unboundedness.

    Args:
        tableau: Row-reduced constraint matrix (modified in place).
        b: Basic solution values (modified in place).
        cost: Objective over all columns; ``inf`` marks frozen columns.
        basis: Current basic column per row (modified in place).
        max_iterations: Global pivot budget.
        iterations: Pivots already spent (returned count includes these).
        priced_cols: Only columns ``< priced_cols`` are candidates to enter.
    """
    m = tableau.shape[0]
    if m == 0:
        return LPStatus.OPTIMAL, iterations
    limit = priced_cols if priced_cols is not None else tableau.shape[1]
    use_bland = False
    stall = 0
    last_objective = math.inf

    while iterations < max_iterations:
        # Reduced costs: cost_j - cost_B @ tableau[:, j].
        cost_basis = cost[basis]
        if np.any(np.isinf(cost_basis)):
            # A frozen (artificial) column is basic at value 0; treat its
            # cost as 0 -- it contributes nothing and must never leave 0.
            cost_basis = np.where(np.isinf(cost_basis), 0.0, cost_basis)
        reduced = cost[:limit] - cost_basis @ tableau[:, :limit]

        if use_bland:
            candidates = np.where(reduced < -EPS)[0]
            if candidates.size == 0:
                return LPStatus.OPTIMAL, iterations
            entering = int(candidates[0])
        else:
            entering = int(np.argmin(reduced))
            if reduced[entering] >= -EPS:
                return LPStatus.OPTIMAL, iterations

        column = tableau[:, entering]
        positive = column > EPS
        if not np.any(positive):
            return LPStatus.UNBOUNDED, iterations
        ratios = np.full(m, np.inf)
        ratios[positive] = b[positive] / column[positive]
        leaving = int(np.argmin(ratios))
        if use_bland:
            # Bland: among minimal ratios choose the smallest basis index.
            best = ratios[leaving]
            ties = np.where(ratios <= best + EPS)[0]
            leaving = int(min(ties, key=lambda i: basis[i]))

        _pivot(tableau, b, basis, leaving, entering)
        iterations += 1

        objective = float(np.where(np.isinf(cost[basis]), 0.0, cost[basis]) @ b)
        if objective < last_objective - EPS:
            stall = 0
            last_objective = objective
        else:
            stall += 1
            if stall >= STALL_LIMIT:
                use_bland = True

    return LPStatus.ITERATION_LIMIT, iterations
